package core

import (
	"math"
	"math/rand"
	"testing"

	"biglittle/internal/apps"
	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/thermal"
)

// System-level invariants that must hold for ANY run configuration: energy
// accounting, metric cross-consistency, and structural sanity of every
// reported distribution. Configurations are fuzzed from a seeded generator.
func TestPropertySystemInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzed sweep")
	}
	rng := rand.New(rand.NewSource(2026))
	allApps := apps.All()
	for iter := 0; iter < 24; iter++ {
		app := allApps[rng.Intn(len(allApps))]
		cfg := DefaultConfig(app)
		cfg.Duration = event.Time(2+rng.Intn(5)) * event.Second
		cfg.Seed = rng.Int63()
		cfg.Cores = platform.CoreConfig{
			Little: 1 + rng.Intn(4),
			Big:    rng.Intn(5),
		}
		if rng.Intn(3) == 0 {
			cfg.Cores.Tiny = 1 + rng.Intn(2)
		}
		cfg.Governor = []GovernorKind{Interactive, Performance, Powersave, Ondemand, Conservative, PAST}[rng.Intn(6)]
		cfg.Scheduler = []SchedulerKind{HMP, EfficiencyBased, ParallelismAware, EAS}[rng.Intn(4)]
		if rng.Intn(3) == 0 {
			cfg.Sched.DeepIdleAfter = 2 * event.Millisecond
			cfg.Sched.DeepIdleWake = event.Millisecond
		}
		r := Run(cfg)

		// Energy accounting: EnergyMJ == AvgPowerMW x sampled time (within
		// the sampler's last-window truncation).
		sampled := cfg.Duration.Seconds()
		if r.AvgPowerMW > 0 {
			impliedJ := r.AvgPowerMW * sampled / 1000
			gotJ := r.EnergyMJ / 1000
			if math.Abs(impliedJ-gotJ)/impliedJ > 0.02 {
				t.Errorf("iter %d (%s): energy %.2fJ vs implied %.2fJ", iter, r.App, gotJ, impliedJ)
			}
		}
		// Power bounded below by the base rail and above by worst case.
		if r.AvgPowerMW < 250 || r.AvgPowerMW > 12000 {
			t.Errorf("iter %d (%s): implausible power %.0f mW", iter, r.App, r.AvgPowerMW)
		}

		// Matrix consistency: cells sum to 100, idle cell matches IdlePct,
		// and the TLP recomputed from the matrix matches the report.
		sum, idle := 0.0, r.Matrix[0][0]
		weighted, nonIdle := 0.0, 0.0
		for b := 0; b <= 4; b++ {
			for l := 0; l <= 4; l++ {
				v := r.Matrix[b][l]
				if v < 0 {
					t.Fatalf("negative matrix cell")
				}
				sum += v
				if b == 0 && l == 0 {
					continue
				}
				weighted += v * float64(b+l)
				nonIdle += v
			}
		}
		if math.Abs(sum-100) > 0.01 {
			t.Errorf("iter %d (%s): matrix sums to %.3f", iter, r.App, sum)
		}
		if math.Abs(idle-r.TLP.IdlePct) > 0.01 {
			t.Errorf("iter %d (%s): idle cell %.2f vs IdlePct %.2f", iter, r.App, idle, r.TLP.IdlePct)
		}
		if nonIdle > 0 {
			tlp := weighted / nonIdle
			if math.Abs(tlp-r.TLP.TLP) > 0.01 {
				t.Errorf("iter %d (%s): TLP from matrix %.3f vs report %.3f", iter, r.App, tlp, r.TLP.TLP)
			}
		}
		// LittleOnly and Big partitions cover all non-idle samples.
		if nonIdle > 0 && math.Abs(r.TLP.LittleOnlyPct+r.TLP.BigPct-100) > 0.01 {
			t.Errorf("iter %d (%s): little-only %.2f + big %.2f != 100",
				iter, r.App, r.TLP.LittleOnlyPct, r.TLP.BigPct)
		}

		// No big usage possible without big cores online.
		if cfg.Cores.Big == 0 && r.TLP.BigPct != 0 {
			t.Errorf("iter %d (%s): big usage %.2f with no big cores", iter, r.App, r.TLP.BigPct)
		}
		// No tiny activity without tiny cores.
		if cfg.Cores.Tiny == 0 && r.TinyActivePct != 0 {
			t.Errorf("iter %d (%s): tiny activity without tiny cores", iter, r.App)
		}

		// Residency distributions are percentages summing to ~100 or all 0.
		for name, res := range map[string][]float64{"little": r.LittleResidency, "big": r.BigResidency} {
			s := 0.0
			for _, v := range res {
				if v < 0 {
					t.Fatalf("negative residency")
				}
				s += v
			}
			if s > 0.01 && math.Abs(s-100) > 0.01 {
				t.Errorf("iter %d (%s): %s residency sums to %.3f", iter, r.App, name, s)
			}
		}

		// FPS halves must bracket the overall average loosely.
		if r.Metric == apps.FPS && r.Frames > 0 {
			recomputed := (r.FPSFirstHalf + r.FPSSecondHalf) / 2
			if math.Abs(recomputed-r.AvgFPS) > 1.0 {
				t.Errorf("iter %d (%s): halves avg %.2f vs AvgFPS %.2f", iter, r.App, recomputed, r.AvgFPS)
			}
		}
	}
}

// Determinism holds across every scheduler and governor kind.
func TestPropertyDeterminismAcrossKinds(t *testing.T) {
	app, _ := apps.ByName("virus_scanner")
	for _, sk := range []SchedulerKind{HMP, EfficiencyBased, ParallelismAware, EAS} {
		for _, gk := range []GovernorKind{Interactive, Ondemand, PAST} {
			mk := func() Result {
				cfg := DefaultConfig(app)
				cfg.Duration = 3 * event.Second
				cfg.Scheduler = sk
				cfg.Governor = gk
				return Run(cfg)
			}
			a, b := mk(), mk()
			if a.AvgPowerMW != b.AvgPowerMW || a.Interactions != b.Interactions ||
				a.HMPMigrations != b.HMPMigrations || a.TotalWorkGc != b.TotalWorkGc {
				t.Errorf("scheduler %v governor %v: nondeterministic results", sk, gk)
			}
		}
	}
}

// The thermal model composes with every other feature without violating the
// energy accounting.
func TestThermalComposesWithFeatures(t *testing.T) {
	app, _ := apps.ByName("encoder")
	cfg := DefaultConfig(app)
	cfg.Duration = 5 * event.Second
	cfg.Sched.DeepIdleAfter = 2 * event.Millisecond
	cfg.Sched.DeepIdleWake = event.Millisecond
	cfg.Cores = platform.CoreConfig{Tiny: 2, Little: 4, Big: 4}
	par := thermal.Default()
	cfg.Thermal = &par
	r := Run(cfg)
	if r.Interactions == 0 {
		t.Fatal("no work completed with all features enabled")
	}
	if r.MaxTempC <= 0 {
		t.Fatal("thermal model reported no temperature")
	}
}
