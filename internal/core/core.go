// Package core assembles the full simulated platform — SoC, power model, HMP
// scheduler, frequency governor, application workload, and the 10 ms metric
// sampler — and runs one experiment, producing a Result with every metric
// the paper reports: TLP and core-usage decomposition (Tables III/IV),
// efficiency states (Table V), frequency residency (Figures 9/10), average
// system power, and the app's latency or FPS performance.
package core

import (
	"biglittle/internal/apps"
	"biglittle/internal/delta"
	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/metrics"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/profile"
	"biglittle/internal/sched"
	"biglittle/internal/snapshot"
	"biglittle/internal/telemetry"
	"biglittle/internal/thermal"
	"biglittle/internal/xray"
)

// SchedulerKind selects the thread-to-core mapping policy (§IV-A).
type SchedulerKind int

const (
	// HMP is the commercial utilization-based scheduler (Algorithm 1).
	HMP SchedulerKind = iota
	// EfficiencyBased maps the top-N threads by big-core speedup to the N
	// big cores (Kumar et al.).
	EfficiencyBased
	// ParallelismAware uses big cores for serial phases and little cores
	// when parallelism is abundant (Saez et al.).
	ParallelismAware
	// EAS places each task on the cluster with the lowest modeled energy
	// per unit of work — the policy that replaced HMP in mainline Linux.
	EAS
)

func (k SchedulerKind) String() string {
	switch k {
	case EfficiencyBased:
		return "efficiency"
	case ParallelismAware:
		return "parallelism"
	case EAS:
		return "eas"
	default:
		return "hmp"
	}
}

// GovernorKind selects the DVFS policy for a run.
type GovernorKind int

const (
	// Interactive is the paper's default load-tracking governor.
	Interactive GovernorKind = iota
	// Performance pins all clusters at maximum frequency.
	Performance
	// Powersave pins all clusters at minimum frequency.
	Powersave
	// Userspace pins clusters at Config.PinnedMHz.
	Userspace
	// Ondemand is the classic Linux governor: jump to max above the
	// threshold, proportional otherwise.
	Ondemand
	// Conservative steps the frequency one table entry at a time.
	Conservative
	// PAST is Weiser et al.'s policy, the interactive governor's precursor
	// (§IV-D).
	PAST
)

func (k GovernorKind) String() string {
	switch k {
	case Performance:
		return "performance"
	case Powersave:
		return "powersave"
	case Userspace:
		return "userspace"
	case Ondemand:
		return "ondemand"
	case Conservative:
		return "conservative"
	case PAST:
		return "past"
	default:
		return "interactive"
	}
}

// Config describes one simulation run. The zero value is not runnable; use
// DefaultConfig and override fields.
type Config struct {
	App      apps.App
	Seed     int64
	Duration event.Time

	// Cores is the hotplug configuration (default L4+B4).
	Cores platform.CoreConfig

	Sched sched.Config
	// Scheduler selects the mapping policy; HMP is the paper's baseline.
	Scheduler SchedulerKind
	Governor  GovernorKind
	Gov       governor.InteractiveConfig
	// PinnedMHz maps cluster ID to frequency for the Userspace governor.
	PinnedMHz map[int]int

	Power power.Params

	// Platform, when non-nil, overrides the SoC (default: Exynos 5422, or
	// its tiny-extended variant when Cores.Tiny > 0). Pair a non-default
	// platform with matching Power parameters.
	Platform func() *platform.SoC

	// Thermal, when non-nil, enables the per-cluster thermal model and its
	// throttling governor.
	Thermal *thermal.Params

	// Telemetry, when non-nil, is attached to every subsystem for the run:
	// the scheduler emits migration/wake/preempt/boost events, the governor
	// its frequency decisions, the thermal model throttle steps, hotplug
	// transitions are recorded, and the 10 ms sampler publishes power
	// snapshots. Latency and frame-time distributions land in the
	// "latency_ms" and "frame_time_ms" histograms. Nil (the default)
	// disables all recording at near-zero cost.
	Telemetry *telemetry.Collector

	// Profiler, when non-nil, attributes the run to individual tasks:
	// run/wait/sleep time split by core type, per-(core type, MHz) frequency
	// residency, each power interval's energy split across the tasks that
	// ran in it, and migration accounting. Result.Profile carries the final
	// snapshot. Nil (the default) disables attribution at near-zero cost.
	Profiler *profile.Profiler

	// Xray, when non-nil, is the causal decision tracer for the run: the
	// scheduler records every wake placement and migration with its full
	// candidate set and rejection reasons, the governor every frequency step
	// with the per-core demands, the thermal model every cap step, and
	// hotplug transitions — all causally linked into walkable chains (see
	// internal/xray). Like Telemetry and Profiler, it is a pure observer: a
	// traced run produces byte-identical results, and nil (the default)
	// disables tracing at one pointer check per decision.
	Xray *xray.Tracer

	// OnSystem, if set, is called with the assembled scheduler system right
	// before the workload is built — an extension point for attaching trace
	// recorders or custom policies.
	OnSystem func(sys *sched.System)

	// Check, when non-nil, attaches a runtime invariant auditor to the run
	// (see internal/check): it continuously verifies conservation laws —
	// legal cluster frequencies, the little-core hotplug constraint, time and
	// energy accounting — and its Finish hook reconciles the end-of-run
	// totals. Nil (the default) disables auditing at near-zero cost. The
	// auditor is a pure observer: an audited run produces identical results.
	Check Checker

	// Digest, when non-nil, folds a rolling hash of simulator state into
	// chained per-window digests at every scheduler tick (see
	// internal/delta): the run's fingerprint, and the substrate the
	// first-divergence finder bisects when two configs are compared. Like
	// the other observers it is pure and nil-disabled at zero cost.
	Digest *delta.Recorder

	// SnapshotAt, when positive, makes Run capture a whole-simulation
	// snapshot at that time and hand it to OnSnapshot before continuing to
	// Duration (see internal/snapshot and DESIGN.md §9). Snapshot-enabled
	// runs record the workload's interactions, so they are modestly slower
	// than plain runs but produce byte-identical Results; they reject the
	// observer hooks Resume cannot reconstruct (Check, Telemetry, Profiler,
	// Xray, OnSystem). Zero (the default) disables capture entirely.
	SnapshotAt event.Time
	// OnSnapshot receives the state captured at SnapshotAt.
	OnSnapshot func(st *snapshot.State)
}

// Checker is the runtime invariant auditor hook. *check.Auditor implements
// it; the interface is declared structurally here so internal/check can
// depend on this package's Result without an import cycle.
type Checker interface {
	// Attach installs the checker on the assembled system. Run calls it
	// immediately after the metrics sampler starts (and before the thermal
	// model or any workload is built), so the checker's sampling events fire
	// right after the sampler's at every shared timestamp.
	Attach(sys *sched.System, pw power.Params)
	// Finish runs end-of-run reconciliation against the metered energy.
	Finish(elapsed event.Time, meterMJ float64)
}

// DefaultConfig returns the paper's baseline system configuration for app.
func DefaultConfig(app apps.App) Config {
	return Config{
		App:      app,
		Seed:     1,
		Duration: 30 * event.Second,
		Cores:    platform.Baseline(),
		Sched:    sched.DefaultConfig(),
		Governor: Interactive,
		Gov:      governor.DefaultInteractive(),
		Power:    power.Default(),
	}
}

// Result holds every metric collected from one run.
type Result struct {
	App       string
	Metric    apps.Metric
	Duration  event.Time
	Cores     platform.CoreConfig
	Scheduler SchedulerKind

	TLP    metrics.TLPReport
	Matrix [5][5]float64
	Eff    [6]float64
	// TinyActivePct is the share of active core-samples served by tiny
	// cores (tiny-core extension platform only).
	TinyActivePct float64
	// AvgLittleUtil / AvgBigUtil are the mean utilizations of the online
	// cores of each cluster over the whole run — the quantity behind the
	// paper's "mobile applications have low CPU utilization".
	AvgLittleUtil float64
	AvgBigUtil    float64

	// Residency indexes match the cluster frequency tables.
	LittleFreqs     []int
	BigFreqs        []int
	LittleResidency []float64
	BigResidency    []float64

	AvgPowerMW float64
	EnergyMJ   float64

	// Latency metrics (latency-oriented apps).
	Interactions int
	MeanLatency  event.Time
	TotalLatency event.Time
	WorstLatency event.Time

	// FPS metrics (FPS-oriented apps).
	Frames int
	AvgFPS float64
	MinFPS float64

	// Scheduler counters.
	HMPMigrations int
	// TotalWorkGc is the total executed work in giga-cycles across all
	// tasks — a throughput measure for workloads without a latency/FPS
	// metric (e.g. stress tests).
	TotalWorkGc float64
	// TaskStats breaks execution and attributed energy down per thread,
	// sorted by energy descending.
	TaskStats []TaskStat

	// Sustained-performance metrics (FPS apps): average FPS over the first
	// and second halves of the run — they diverge under thermal throttling.
	FPSFirstHalf  float64
	FPSSecondHalf float64
	// Thermal metrics (zero unless Config.Thermal was set).
	MaxTempC     float64
	ThrottledPct float64

	// Profile is the per-task attribution snapshot (nil unless
	// Config.Profiler was set).
	Profile *profile.Snapshot
}

// TaskStat is one thread's share of a run.
type TaskStat struct {
	Name       string
	EnergyJ    float64
	LittleMs   float64
	BigMs      float64
	TinyMs     float64
	Migrations int
}

// Normalized returns cfg with every zero-valued field resolved to the same
// default Run would apply, so two configs that produce identical simulations
// compare (and fingerprint) identically.
func (c Config) Normalized() Config {
	if c.Duration <= 0 {
		c.Duration = 30 * event.Second
	}
	if c.Cores == (platform.CoreConfig{}) {
		c.Cores = platform.Baseline()
	}
	if c.Sched == (sched.Config{}) {
		c.Sched = sched.DefaultConfig()
	}
	if c.Power == (power.Params{}) {
		c.Power = power.Default()
	}
	return c
}

// Run executes one simulation and gathers its Result. When SnapshotAt is
// set, the run pauses at that time to capture a whole-simulation snapshot
// (handed to OnSnapshot), then continues — the Result is byte-identical
// either way.
func Run(cfg Config) Result {
	cfg = cfg.Normalized()
	if cfg.SnapshotAt <= 0 {
		sim := newSim(cfg, nil)
		sim.eng.Run(cfg.Duration)
		return sim.Finish()
	}
	sim, err := NewSim(cfg)
	if err != nil {
		panic(err) // configurations are validated values; misuse is a bug
	}
	sim.RunTo(cfg.SnapshotAt)
	st, err := sim.Snapshot()
	if err != nil {
		panic(err)
	}
	if cfg.OnSnapshot != nil {
		cfg.OnSnapshot(st)
	}
	sim.RunTo(cfg.Duration)
	return sim.Finish()
}

// Performance returns the app's scalar performance for comparisons: frames
// per second for FPS apps, and interactions per second (inverse mean
// latency work rate) for latency apps — higher is better for both.
func (r Result) Performance() float64 {
	if r.Metric == apps.FPS {
		return r.AvgFPS
	}
	if r.MeanLatency <= 0 {
		return 0
	}
	return 1.0 / r.MeanLatency.Seconds()
}
