package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"biglittle/internal/apps"
	"biglittle/internal/delta"
	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/thermal"
)

// forkCase is one property-test instance: a full run configuration and a
// fork time. It prints compactly so a failure names the exact (config, T).
type forkCase struct {
	App       string
	Cores     platform.CoreConfig
	Scheduler SchedulerKind
	Governor  GovernorKind
	Thermal   bool
	Seed      int64
	ForkAt    event.Time
}

func (c forkCase) String() string {
	return fmt.Sprintf("app=%s cores=%v sched=%v gov=%v thermal=%v seed=%d forkAt=%v",
		c.App, c.Cores, c.Scheduler, c.Governor, c.Thermal, c.Seed, c.ForkAt)
}

const propDuration = 1500 * event.Millisecond

func (c forkCase) config(t *testing.T) Config {
	app, err := apps.ByName(c.App)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(app)
	cfg.Duration = propDuration
	cfg.Cores = c.Cores
	cfg.Scheduler = c.Scheduler
	cfg.Governor = c.Governor
	cfg.Seed = c.Seed
	if c.Thermal {
		p := thermal.Default()
		cfg.Thermal = &p
	}
	return cfg
}

// check runs the differential harness on one case: the forked run's Result
// and digest chain must equal the from-scratch run's. It returns a
// description of the first observed divergence, or "" when the fork is
// byte-identical.
func (c forkCase) check(t *testing.T) string {
	var scratch, forked delta.Recorder
	cfgA := c.config(t)
	cfgA.Digest = &scratch
	want := Run(cfgA)

	cfgB := c.config(t)
	cfgB.Digest = &forked
	got, err := RunForked(cfgB, c.ForkAt)
	if err != nil {
		return fmt.Sprintf("RunForked failed: %v", err)
	}
	if w, err := delta.FirstDivergentWindow(scratch.Chain(), forked.Chain()); err != nil {
		return fmt.Sprintf("chain comparison failed: %v", err)
	} else if w != -1 {
		return fmt.Sprintf("digest chains diverge at window %d", w)
	}
	if !reflect.DeepEqual(want, got) {
		return "results differ despite identical digest chains"
	}
	return ""
}

// shrink greedily simplifies a failing case while it keeps failing: default
// the policies, drop thermal, shrink the topology, and bisect the fork time
// toward the middle of the run. The returned case is locally minimal.
func shrink(t *testing.T, c forkCase) forkCase {
	simpler := []func(forkCase) forkCase{
		func(c forkCase) forkCase { c.Thermal = false; return c },
		func(c forkCase) forkCase { c.Scheduler = HMP; return c },
		func(c forkCase) forkCase { c.Governor = Interactive; return c },
		func(c forkCase) forkCase { c.Cores = platform.Baseline(); return c },
		func(c forkCase) forkCase { c.App = "browser"; return c },
		func(c forkCase) forkCase { c.Seed = 1; return c },
		func(c forkCase) forkCase { c.ForkAt = propDuration / 2; return c },
	}
	for changed := true; changed; {
		changed = false
		for _, f := range simpler {
			cand := f(c)
			if cand == c {
				continue
			}
			if c.check(t) != "" && cand.check(t) != "" {
				c = cand
				changed = true
			}
		}
	}
	return c
}

// TestForkProperty drives randomized (config, fork time) pairs through the
// differential harness. Deterministically seeded; on failure it shrinks to
// a minimal failing case and reports it for pinning as a regression test.
func TestForkProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20260807))
	appNames := []string{
		"browser", "fifa15", "virus_scanner", "youtube", "angry_bird", "pdf_reader",
	}
	study := []platform.CoreConfig{
		{Little: 4, Big: 4}, {Little: 4}, {Little: 2, Big: 2}, {Little: 1, Big: 1},
	}
	schedulers := []SchedulerKind{HMP, EfficiencyBased, ParallelismAware, EAS}
	governors := []GovernorKind{Interactive, Performance, Powersave, Ondemand, Conservative, PAST}

	const cases = 24
	for i := 0; i < cases; i++ {
		c := forkCase{
			App:       appNames[rng.Intn(len(appNames))],
			Cores:     study[rng.Intn(len(study))],
			Scheduler: schedulers[rng.Intn(len(schedulers))],
			Governor:  governors[rng.Intn(len(governors))],
			Thermal:   rng.Intn(3) == 0,
			Seed:      int64(1 + rng.Intn(5)),
			// Fork anywhere in (0, duration), including awkward unaligned times.
			ForkAt: event.Time(1 + rng.Int63n(int64(propDuration))),
		}
		if msg := c.check(t); msg != "" {
			min := shrink(t, c)
			t.Fatalf("fork divergence (case %d): %s\n  original: %s\n  shrunken: %s\n  shrunken failure: %s",
				i, msg, c, min, min.check(t))
		}
	}
}
