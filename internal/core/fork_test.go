package core

import (
	"reflect"
	"testing"

	"biglittle/internal/apps"
	"biglittle/internal/delta"
	"biglittle/internal/event"
	"biglittle/internal/power"
	"biglittle/internal/profile"
	"biglittle/internal/sched"
	"biglittle/internal/snapshot"
	"biglittle/internal/telemetry"
	"biglittle/internal/thermal"
	"biglittle/internal/workload"
	"biglittle/internal/xray"
)

func shortCfg(app apps.App) Config {
	cfg := DefaultConfig(app)
	cfg.Duration = 2 * event.Second
	return cfg
}

// TestRecordingIsPassive pins the contract everything else builds on: a
// snapshot-enabled run (recorder attached, never snapshotted) produces a
// Result byte-identical to a plain run's.
func TestRecordingIsPassive(t *testing.T) {
	for _, app := range []apps.App{apps.Browser(), apps.AngryBird(), apps.VirusScanner()} {
		cfg := shortCfg(app)
		plain := Run(cfg)
		sim, err := NewSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim.RunTo(cfg.Duration)
		recorded := sim.Finish()
		if !reflect.DeepEqual(plain, recorded) {
			t.Fatalf("%s: recorded run diverged from plain run\nplain:    %+v\nrecorded: %+v", app.Name, plain, recorded)
		}
	}
}

// TestForkByteIdentity is the tentpole contract: fork at T, continue to the
// end, and the Result equals a from-scratch run exactly — across every app,
// including the codec round-trip RunForked performs.
func TestForkByteIdentity(t *testing.T) {
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			cfg := shortCfg(app)
			want := Run(cfg)
			got, err := RunForked(cfg, cfg.Duration/2)
			if err != nil {
				t.Fatalf("RunForked: %v", err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("forked run diverged from from-scratch run\nwant: %+v\ngot:  %+v", want, got)
			}
		})
	}
}

// TestForkDigestChains runs the differential harness over a fork: the delta
// digest chain of a forked run must match the from-scratch chain window for
// window — and DiffRuns must find no divergence.
func TestForkDigestChains(t *testing.T) {
	cfg := shortCfg(apps.Browser())
	var scratch, forked delta.Recorder
	cfgA := cfg
	cfgA.Digest = &scratch
	Run(cfgA)

	cfgB := cfg
	cfgB.Digest = &forked
	if _, err := RunForked(cfgB, cfg.Duration/2); err != nil {
		t.Fatalf("RunForked: %v", err)
	}

	a, b := scratch.Chain(), forked.Chain()
	w, err := delta.FirstDivergentWindow(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if w != -1 {
		t.Fatalf("digest chains diverge at window %d (fork at %v)", w, cfg.Duration/2)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("chain fingerprints differ despite identical windows")
	}
}

// TestForkVariants exercises the sweep semantics: the continuation may vary
// policy knobs, which take effect at the fork point. The forked variant must
// equal a run that had SnapshotAt set but never forked... it cannot (the
// config differs before the fork), so instead pin that each variant resumes
// successfully and produces a self-consistent result.
func TestForkVariants(t *testing.T) {
	base := shortCfg(apps.FIFA15())
	sim, err := NewSim(base)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunTo(base.Duration / 2)
	st, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	variants := map[string]func(Config) Config{
		"governor sample":  func(c Config) Config { c.Gov.SampleMs = 40; return c },
		"governor kind":    func(c Config) Config { c.Governor = Conservative; return c },
		"scheduler kind":   func(c Config) Config { c.Scheduler = EAS; return c },
		"thermal envelope": func(c Config) Config { p := thermal.Default(); c.Thermal = &p; return c },
		"longer horizon":   func(c Config) Config { c.Duration = 3 * event.Second; return c },
	}
	results := map[string]Result{}
	for name, mut := range variants {
		cfg := mut(base)
		forked, err := Resume(cfg, st)
		if err != nil {
			t.Fatalf("%s: Resume: %v", name, err)
		}
		forked.RunTo(cfg.Duration)
		results[name] = forked.Finish()
	}
	// The baseline continuation must differ from at least one variant — a
	// sweep that cannot move the output is recording the wrong knobs.
	cont, err := Resume(base, st)
	if err != nil {
		t.Fatal(err)
	}
	cont.RunTo(base.Duration)
	baseRes := cont.Finish()
	if reflect.DeepEqual(baseRes, results["governor kind"]) {
		t.Fatal("governor-kind variant produced a byte-identical result; the knob did not take effect at the fork")
	}
}

// TestSnapshotOfRestoredRun pins idempotence: resume a snapshot, run a bit,
// snapshot again, resume THAT, and the final result still matches the
// from-scratch run — forks of forks stay byte-identical.
func TestSnapshotOfRestoredRun(t *testing.T) {
	cfg := shortCfg(apps.Youtube())
	want := Run(cfg)

	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunTo(cfg.Duration / 4)
	st1, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	mid, err := Resume(cfg, st1)
	if err != nil {
		t.Fatal(err)
	}
	mid.RunTo(cfg.Duration / 2)
	st2, err := mid.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// The first snapshot must be reusable after the second was taken (the
	// lab resumes one shared prefix many times).
	again, err := Resume(cfg, st1)
	if err != nil {
		t.Fatalf("re-resume of first snapshot: %v", err)
	}
	again.RunTo(cfg.Duration)
	if got := again.Finish(); !reflect.DeepEqual(want, got) {
		t.Fatal("second resume of the same snapshot diverged")
	}

	final, err := Resume(cfg, st2)
	if err != nil {
		t.Fatalf("resume of re-snapshot: %v", err)
	}
	final.RunTo(cfg.Duration)
	if got := final.Finish(); !reflect.DeepEqual(want, got) {
		t.Fatal("fork-of-fork diverged from the from-scratch run")
	}
}

// TestSnapshotAtConfig drives the capture through Run's SnapshotAt hook and
// checks the run itself is unperturbed.
func TestSnapshotAtConfig(t *testing.T) {
	cfg := shortCfg(apps.PDFReader())
	want := Run(cfg)

	var st *snapshot.State
	cfg2 := cfg
	cfg2.SnapshotAt = cfg.Duration / 2
	cfg2.OnSnapshot = func(s *snapshot.State) { st = s }
	got := Run(cfg2)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("SnapshotAt perturbed the run result")
	}
	if st == nil {
		t.Fatal("OnSnapshot never called")
	}
	if st.Time != cfg.Duration/2 {
		t.Fatalf("snapshot captured at %v, want %v", st.Time, cfg.Duration/2)
	}
	forked, err := Resume(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	forked.RunTo(cfg.Duration)
	if res := forked.Finish(); !reflect.DeepEqual(want, res) {
		t.Fatal("resume of SnapshotAt capture diverged")
	}
}

// TestResumeCompat pins the loud-rejection surface: wrong identity fields,
// incompatible observer hooks, and session checkpoints all refuse to resume.
func TestResumeCompat(t *testing.T) {
	cfg := shortCfg(apps.Browser())
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunTo(cfg.Duration / 2)
	st, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	bad := []struct {
		name string
		mut  func(Config) Config
	}{
		{"wrong app", func(c Config) Config { c.App = apps.FIFA15(); return c }},
		{"wrong seed", func(c Config) Config { c.Seed = 99; return c }},
		{"wrong cores", func(c Config) Config { c.Cores.Big = 2; return c }},
		{"short horizon", func(c Config) Config { c.Duration = cfg.Duration / 4; return c }},
		{"telemetry", func(c Config) Config { c.Telemetry = telemetry.NewCollector(); return c }},
	}
	for _, tc := range bad {
		if _, err := Resume(tc.mut(cfg), st); err == nil {
			t.Errorf("%s: Resume accepted an incompatible config", tc.name)
		}
	}

	// A session-style checkpoint (phase marker in the log) must be refused.
	st2 := *st
	st2.Workload.Log = append([]workload.Record{{Kind: workload.RecPhase, App: "x"}}, st.Workload.Log...)
	if _, err := Resume(cfg, &st2); err == nil {
		t.Error("Resume accepted a session checkpoint")
	}

	// NewSim must reject configs whose observers cannot be captured.
	cfgBad := cfg
	cfgBad.Check = stubChecker{}
	if _, err := NewSim(cfgBad); err == nil {
		t.Error("NewSim accepted a Check auditor")
	}
	cfgHook := cfg
	cfgHook.OnSystem = func(sys *sched.System) {}
	if _, err := NewSim(cfgHook); err == nil {
		t.Error("NewSim accepted an OnSystem hook")
	}
}

// TestSnapshotErrorPaths pins the rest of the refusal surface: every
// unsupported observer, capture-time state, and doctored snapshot is a loud
// error, never a silently wrong fork.
func TestSnapshotErrorPaths(t *testing.T) {
	cfg := shortCfg(apps.AngryBird())

	// Every observer snapshotCompat names must be rejected, on both the
	// NewSim and RunForked entry points.
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"telemetry", func(c *Config) { c.Telemetry = telemetry.NewCollector() }},
		{"profiler", func(c *Config) { c.Profiler = profile.New() }},
		{"xray", func(c *Config) { c.Xray = xray.New() }},
	} {
		bad := cfg
		tc.mut(&bad)
		if _, err := NewSim(bad); err == nil {
			t.Errorf("%s: NewSim accepted an observer a resume cannot reconstruct", tc.name)
		}
		if _, err := RunForked(bad, cfg.Duration/2); err == nil {
			t.Errorf("%s: RunForked accepted an observer a resume cannot reconstruct", tc.name)
		}
	}

	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunTo(cfg.Duration / 2)
	st, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// RunTo past the horizon is capped, not an overrun.
	sim.RunTo(cfg.Duration * 2)
	if got := sim.Now(); got != cfg.Duration {
		t.Fatalf("RunTo past the horizon left the clock at %v, want %v", got, cfg.Duration)
	}

	// Snapshot after Finish must refuse.
	sim.Finish()
	if _, err := sim.Snapshot(); err == nil {
		t.Error("Snapshot after Finish succeeded")
	}

	// A custom-platform mismatch between snapshot and resume must refuse.
	plat := *st
	plat.CustomPlatform = true
	if _, err := Resume(cfg, &plat); err == nil {
		t.Error("Resume accepted a custom-platform mismatch")
	}

	// Doctored tracker state: a replay that disagrees with the captured
	// FPS/latency trackers must kill the fork.
	if len(st.Workload.Frames) == 0 {
		t.Fatal("test app rendered no frames before the fork point; pick a frame-driven app")
	}
	short := *st
	short.Workload.Frames = append([]event.Time(nil), st.Workload.Frames[:len(st.Workload.Frames)-1]...)
	if _, err := Resume(cfg, &short); err == nil {
		t.Error("Resume accepted a snapshot missing a captured frame")
	}
	skew := *st
	skew.Workload.Frames = append([]event.Time(nil), st.Workload.Frames...)
	skew.Workload.Frames[0]++
	if _, err := Resume(cfg, &skew); err == nil {
		t.Error("Resume accepted a snapshot with a shifted frame time")
	}
	lat := *st
	lat.Workload.LatN++
	if _, err := Resume(cfg, &lat); err == nil {
		t.Error("Resume accepted a snapshot with a doctored latency tracker")
	}

	// Full-rate digest steps are not carried across a fork; capturing with
	// any recorded must refuse rather than drop them.
	cfgD := cfg
	cfgD.Digest = &delta.Recorder{FullFrom: 0, FullTo: cfg.Duration}
	simD, err := NewSim(cfgD)
	if err != nil {
		t.Fatal(err)
	}
	simD.RunTo(cfg.Duration / 2)
	if _, err := simD.Snapshot(); err == nil {
		t.Error("Snapshot accepted full-rate digest steps")
	}
}

// stubChecker satisfies Checker without doing anything; NewSim must reject
// it before it ever runs.
type stubChecker struct{}

func (stubChecker) Attach(sys *sched.System, pw power.Params)  {}
func (stubChecker) Finish(elapsed event.Time, meterMJ float64) {}
