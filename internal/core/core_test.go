package core

import (
	"testing"

	"biglittle/internal/apps"
	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
)

// short runs one app for a reduced duration suitable for unit tests.
func short(t *testing.T, app apps.App, mutate func(*Config)) Result {
	t.Helper()
	cfg := DefaultConfig(app)
	cfg.Duration = 8 * event.Second
	if mutate != nil {
		mutate(&cfg)
	}
	return Run(cfg)
}

func TestRunProducesMetrics(t *testing.T) {
	r := short(t, apps.PDFReader(), nil)
	if r.App != "pdf_reader" || r.Metric != apps.Latency {
		t.Fatalf("identity wrong: %s %v", r.App, r.Metric)
	}
	if r.Interactions == 0 || r.MeanLatency <= 0 {
		t.Fatalf("no latency metrics: %d interactions, %v mean", r.Interactions, r.MeanLatency)
	}
	if r.AvgPowerMW <= 250 {
		t.Fatalf("power %f at or below base rail", r.AvgPowerMW)
	}
	if r.TLP.TLP <= 1.0 {
		t.Fatalf("TLP %f, want > 1", r.TLP.TLP)
	}
	// Matrix percentages must sum to ~100.
	sum := 0.0
	for b := range r.Matrix {
		for l := range r.Matrix[b] {
			sum += r.Matrix[b][l]
		}
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("matrix sums to %f", sum)
	}
	// Efficiency states must sum to ~100 as well.
	esum := 0.0
	for _, v := range r.Eff {
		esum += v
	}
	if esum < 99.9 || esum > 100.1 {
		t.Fatalf("efficiency states sum to %f", esum)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := short(t, apps.VideoPlayer(), nil)
	b := short(t, apps.VideoPlayer(), nil)
	if a.AvgPowerMW != b.AvgPowerMW || a.Frames != b.Frames || a.TLP != b.TLP {
		t.Fatalf("same seed produced different results:\n%v\n%v", a, b)
	}
	c := short(t, apps.VideoPlayer(), func(cfg *Config) { cfg.Seed = 99 })
	if a.Frames == c.Frames && a.AvgPowerMW == c.AvgPowerMW {
		t.Fatal("different seed produced identical results")
	}
}

func TestFPSAppReportsFrames(t *testing.T) {
	r := short(t, apps.VideoPlayer(), nil)
	if r.Frames == 0 || r.AvgFPS < 20 || r.AvgFPS > 31 {
		t.Fatalf("video player: frames %d avg %.1f, want ~30fps", r.Frames, r.AvgFPS)
	}
	if r.MinFPS > r.AvgFPS+1 {
		t.Fatalf("min FPS %f above avg %f", r.MinFPS, r.AvgFPS)
	}
}

func TestGovernorKinds(t *testing.T) {
	perf := short(t, apps.VideoPlayer(), func(c *Config) { c.Governor = Performance })
	save := short(t, apps.VideoPlayer(), func(c *Config) { c.Governor = Powersave })
	inter := short(t, apps.VideoPlayer(), nil)
	if perf.AvgPowerMW <= inter.AvgPowerMW {
		t.Fatalf("performance governor power %f <= interactive %f", perf.AvgPowerMW, inter.AvgPowerMW)
	}
	if save.AvgPowerMW > inter.AvgPowerMW {
		t.Fatalf("powersave governor power %f > interactive %f", save.AvgPowerMW, inter.AvgPowerMW)
	}
	user := short(t, apps.VideoPlayer(), func(c *Config) {
		c.Governor = Userspace
		c.PinnedMHz = map[int]int{0: 1300, 1: 1900}
	})
	if user.AvgPowerMW <= inter.AvgPowerMW {
		t.Fatal("userspace@max should burn more than interactive")
	}
}

func TestCoreConfigRespected(t *testing.T) {
	r := short(t, apps.BBench(), func(c *Config) { c.Cores = platform.CoreConfig{Little: 2} })
	if r.TLP.BigPct != 0 {
		t.Fatalf("big usage %f with no big cores online", r.TLP.BigPct)
	}
	if r.Cores.String() != "L2" {
		t.Fatalf("cores %v", r.Cores)
	}
}

func TestResidencySumsTo100(t *testing.T) {
	r := short(t, apps.EternityWarrior(), nil)
	sum := 0.0
	for _, v := range r.LittleResidency {
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("little residency sums to %f", sum)
	}
	if len(r.LittleFreqs) != 9 || len(r.BigFreqs) != 12 {
		t.Fatalf("frequency table lengths %d/%d", len(r.LittleFreqs), len(r.BigFreqs))
	}
}

func TestPerformanceScalar(t *testing.T) {
	fps := Result{Metric: apps.FPS, AvgFPS: 42}
	if fps.Performance() != 42 {
		t.Fatal("FPS performance scalar")
	}
	lat := Result{Metric: apps.Latency, MeanLatency: 100 * event.Millisecond}
	if got := lat.Performance(); got != 10 {
		t.Fatalf("latency performance %f, want 10/s", got)
	}
	if (Result{Metric: apps.Latency}).Performance() != 0 {
		t.Fatal("zero latency should yield zero performance")
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	r := Run(Config{App: apps.VideoPlayer(), Seed: 1, Duration: 2 * event.Second})
	if r.Cores != platform.Baseline() {
		t.Fatalf("cores defaulted to %v", r.Cores)
	}
}

// Calibration anchors from Table III — banded assertions on the paper's
// qualitative claims, run on the full 12-app suite at reduced duration.
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-app characterization")
	}
	results := map[string]Result{}
	for _, app := range apps.All() {
		cfg := DefaultConfig(app)
		cfg.Duration = 12 * event.Second
		results[app.Name] = Run(cfg)
	}

	// §V-A: bbench has the highest TLP (~4); every other app stays below ~3.3.
	bb := results["bbench"].TLP.TLP
	if bb < 3.0 {
		t.Errorf("bbench TLP %.2f, want > 3 (paper 3.95)", bb)
	}
	for name, r := range results {
		if name == "bbench" {
			continue
		}
		if r.TLP.TLP >= bb {
			t.Errorf("%s TLP %.2f >= bbench %.2f", name, r.TLP.TLP, bb)
		}
		if r.TLP.TLP > 3.4 {
			t.Errorf("%s TLP %.2f, paper keeps all non-bbench apps below ~3", name, r.TLP.TLP)
		}
	}

	// §V-A: for most apps big cores are unused for the large majority of
	// active cycles; games/video players essentially never use them.
	for _, name := range []string{"angry_bird", "video_player", "youtube"} {
		if g := results[name].TLP.BigPct; g > 2.0 {
			t.Errorf("%s big usage %.2f%%, paper ~0", name, g)
		}
	}
	// The four big-core consumers the paper calls out.
	for _, name := range []string{"bbench", "encoder", "virus_scanner", "eternity_warrior"} {
		if g := results[name].TLP.BigPct; g < 10 {
			t.Errorf("%s big usage %.2f%%, paper 22-62%%", name, g)
		}
	}

	// Browser is the idlest app (paper 53%).
	if idle := results["browser"].TLP.IdlePct; idle < 35 {
		t.Errorf("browser idle %.1f%%, paper ~53%%", idle)
	}
	// bbench and encoder have near-zero idle.
	for _, name := range []string{"bbench", "encoder"} {
		if idle := results[name].TLP.IdlePct; idle > 10 {
			t.Errorf("%s idle %.1f%%, paper < 1%%", name, idle)
		}
	}

	// Table V: min + <50% dominate for the quiet apps.
	for _, name := range []string{"pdf_reader", "photo_editor", "browser", "youtube"} {
		eff := results[name].Eff
		if eff[0]+eff[1] < 55 {
			t.Errorf("%s min+<50%% = %.1f%%, paper > 60%%", name, eff[0]+eff[1])
		}
	}
	// bbench and encoder show substantial >95% pressure.
	for _, name := range []string{"bbench", "encoder"} {
		eff := results[name].Eff
		if eff[4]+eff[5] < 5 {
			t.Errorf("%s >95%%+full = %.1f%%, paper shows 20%%+", name, eff[4]+eff[5])
		}
	}

	// Table IV structure: when big cores are used at all, one big core
	// dominates (B1 row >> B2+ rows) for every app.
	for name, r := range results {
		b1, bmore := 0.0, 0.0
		for l := 0; l <= 4; l++ {
			b1 += r.Matrix[1][l]
			bmore += r.Matrix[2][l] + r.Matrix[3][l] + r.Matrix[4][l]
		}
		if b1+bmore > 5 && b1 < bmore {
			t.Errorf("%s: B1 row %.1f%% < B2+ rows %.1f%%; paper: a single big core absorbs bursts", name, b1, bmore)
		}
	}
}

// HMP sanity at system level: disabling big cores must not break any app,
// and the encoder must migrate its worker to a big core in the default
// configuration.
func TestSystemLevelHMP(t *testing.T) {
	enc := short(t, apps.Encoder(), nil)
	if enc.TLP.BigPct < 20 {
		t.Fatalf("encoder big usage %.1f%%, want heavy big-core use", enc.TLP.BigPct)
	}
	littleOnly := short(t, apps.Encoder(), func(c *Config) { c.Cores = platform.CoreConfig{Little: 4} })
	if littleOnly.TLP.BigPct != 0 {
		t.Fatal("big usage with no big cores")
	}
	// Encoder throughput must drop without big cores.
	if littleOnly.Interactions >= enc.Interactions {
		t.Fatalf("encoder chunks without big cores (%d) >= with (%d)",
			littleOnly.Interactions, enc.Interactions)
	}
}

func TestSchedConfigPropagates(t *testing.T) {
	// An impossible up-threshold keeps everything on little cores.
	r := short(t, apps.Encoder(), func(c *Config) {
		c.Sched = sched.Config{UpThreshold: 2000, DownThreshold: 256, HalfLifeMs: 32, TickMs: 1}
	})
	if r.TLP.BigPct != 0 {
		t.Fatalf("big usage %.2f%% with unreachable up-threshold", r.TLP.BigPct)
	}
}
