package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"biglittle/internal/altsched"
	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/metrics"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
	"biglittle/internal/snapshot"
	"biglittle/internal/thermal"
	"biglittle/internal/workload"
)

// gov is what every governor constructor yields: a startable policy whose
// dynamic state can be captured and restored around a fork.
type gov interface {
	Start()
	governor.Snapshotter
}

// Sim is one assembled simulation with explicit control over its clock: run
// it forward in steps with RunTo, capture a whole-simulation snapshot
// between steps, and Finish to collect the Result. Run is assembly plus
// run-to-end; NewSim/Resume expose the stepping for snapshot/fork
// (DESIGN.md §9).
type Sim struct {
	cfg      Config
	eng      *event.Engine
	soc      *platform.SoC
	sys      *sched.System
	eas      *altsched.EAS
	gov      gov
	sampler  *metrics.Sampler
	therm    *thermal.Model
	ctx      *workload.Ctx
	finished bool
}

// newSim assembles the platform, policies, observers, and workload exactly
// as Run always has. rec, when non-nil, interposes workload recording for
// snapshot capture (or replay, when resuming).
func newSim(cfg Config, rec *workload.Recorder) *Sim {
	eng := event.New()
	var soc *platform.SoC
	switch {
	case cfg.Platform != nil:
		soc = cfg.Platform()
	case cfg.Cores.Tiny > 0:
		soc = platform.Exynos5422Tiny()
	default:
		soc = platform.Exynos5422()
	}
	if err := cfg.Cores.Apply(soc); err != nil {
		panic(err) // configurations are validated values; misuse is a bug
	}
	sys := sched.New(eng, soc, cfg.Sched)
	sys.Tel = cfg.Telemetry
	sys.Prof = cfg.Profiler
	sys.Xray = cfg.Xray
	pw := cfg.Power
	sys.EnergyModel = func(typ platform.CoreType, mhz int) float64 {
		return pw.CorePowerMW(typ, mhz, 1) - pw.CorePowerMW(typ, mhz, 0)
	}
	sys.Start()

	sim := &Sim{cfg: cfg, eng: eng, soc: soc, sys: sys}

	switch cfg.Scheduler {
	case EfficiencyBased:
		altsched.NewEfficiency(sys)
	case ParallelismAware:
		altsched.NewParallelism(sys)
	case EAS:
		sim.eas = altsched.NewEAS(sys, cfg.Power)
	}

	switch cfg.Governor {
	case Performance:
		sim.gov = governor.NewPerformance(sys)
	case Powersave:
		sim.gov = governor.NewPowersave(sys)
	case Userspace:
		sim.gov = governor.NewUserspace(sys, cfg.PinnedMHz)
	case Ondemand:
		g := governor.NewOndemand(sys, cfg.Gov.SampleMs, 80)
		g.Tel = cfg.Telemetry
		g.Xray = cfg.Xray
		sim.gov = g
	case Conservative:
		g := governor.NewConservative(sys, cfg.Gov.SampleMs, 80, 35)
		g.Tel = cfg.Telemetry
		g.Xray = cfg.Xray
		sim.gov = g
	case PAST:
		g := governor.NewPAST(sys, cfg.Gov.SampleMs)
		g.Tel = cfg.Telemetry
		g.Xray = cfg.Xray
		sim.gov = g
	default:
		g := governor.NewInteractive(sys, cfg.Gov)
		g.Tel = cfg.Telemetry
		g.Xray = cfg.Xray
		sim.gov = g
	}
	sim.gov.Start()

	sampler := metrics.NewSampler(sys, cfg.Power)
	sampler.Tel = cfg.Telemetry
	sampler.Prof = cfg.Profiler
	sampler.Start()
	sim.sampler = sampler

	// The auditor attaches directly after the sampler so its sampling events
	// always fire right after the sampler's and both read identical state.
	if cfg.Check != nil {
		cfg.Check.Attach(sys, pw)
	}

	if cfg.Thermal != nil {
		sim.therm = thermal.Attach(sys, cfg.Power, *cfg.Thermal)
		sim.therm.Tel = cfg.Telemetry
		sim.therm.Xray = cfg.Xray
		sim.therm.Start()
	}

	// The digest recorder attaches last among the tick observers so its fold
	// sees the run fully assembled (thermal model included) and runs after
	// any hooks the subsystems above installed.
	cfg.Digest.Attach(sys, sampler, sim.therm, cfg.Duration)

	if cfg.OnSystem != nil {
		cfg.OnSystem(sys)
	}

	sim.ctx = &workload.Ctx{
		Eng:      eng,
		Sys:      sys,
		Rng:      rand.New(rand.NewSource(cfg.Seed)),
		Duration: cfg.Duration,
		FPS:      &metrics.FPSTracker{},
		Lat:      &metrics.LatencyTracker{},
		Rec:      rec,
	}
	if tel := cfg.Telemetry; tel != nil {
		lat := tel.Histogram("latency_ms")
		sim.ctx.Lat.Observe = func(d event.Time) { lat.Observe(d.Milliseconds()) }
	}
	cfg.App.Build(sim.ctx)
	return sim
}

// NewSim assembles a snapshot-capable simulation: the workload's
// interactions are recorded from the first event, so Snapshot can capture
// the run at any pause point. The config must not carry the observer hooks
// a resume cannot reconstruct (see snapshotCompat).
func NewSim(cfg Config) (*Sim, error) {
	cfg = cfg.Normalized()
	if err := snapshotCompat(cfg); err != nil {
		return nil, err
	}
	return newSim(cfg, workload.NewRecorder()), nil
}

// snapshotCompat rejects config hooks whose state a snapshot cannot capture
// or a resume cannot reconstruct.
func snapshotCompat(cfg Config) error {
	switch {
	case cfg.Check != nil:
		return errors.New("core: snapshot runs cannot carry a Check auditor — it schedules engine events the snapshot cannot re-bind")
	case cfg.Telemetry != nil:
		return errors.New("core: snapshot runs cannot carry Telemetry — collector state is not captured")
	case cfg.Profiler != nil:
		return errors.New("core: snapshot runs cannot carry a Profiler — attribution state is not captured")
	case cfg.Xray != nil:
		return errors.New("core: snapshot runs cannot carry an Xray tracer — trace state is not captured")
	case cfg.OnSystem != nil:
		return errors.New("core: snapshot runs cannot carry an OnSystem hook — arbitrary attachments are not captured")
	}
	return nil
}

// RunTo advances the simulation to t (capped at the configured Duration).
// It may be called repeatedly; the clock never moves backwards.
func (s *Sim) RunTo(t event.Time) {
	if t > s.cfg.Duration {
		t = s.cfg.Duration
	}
	s.eng.Run(t)
}

// Now returns the simulation clock.
func (s *Sim) Now() event.Time { return s.eng.Now() }

// Snapshot captures the complete simulator state at the current clock. The
// capture is a pure read — the simulation continues unperturbed, and a
// continued run produces results byte-identical to one that never paused.
// It fails if any pending engine event belongs to no snapshottable
// subsystem, rather than writing a snapshot that cannot restore.
func (s *Sim) Snapshot() (*snapshot.State, error) {
	rec := s.ctx.Rec
	if !rec.Recording() {
		return nil, errors.New("core: Snapshot needs a recording simulation (use NewSim, not Resume mid-replay)")
	}
	if s.finished {
		return nil, errors.New("core: Snapshot after Finish")
	}
	if s.cfg.Digest != nil && len(s.cfg.Digest.Steps()) > 0 {
		return nil, errors.New("core: cannot snapshot a run with full-rate digest steps recorded — steps are not carried across a fork")
	}
	st := &snapshot.State{
		App:            s.cfg.App.Name,
		Seed:           s.cfg.Seed,
		Cores:          s.cfg.Cores,
		CustomPlatform: s.cfg.Platform != nil,
		SchedKind:      s.cfg.Scheduler.String(),
		GovKind:        s.cfg.Governor.String(),
		Time:           s.eng.Now(),
		Duration:       s.cfg.Duration,
		Engine: snapshot.EngineSnap{
			Now:   s.eng.Now(),
			Seq:   s.eng.Scheduled(),
			Fired: s.eng.Fired(),
		},
		Workload: snapshot.WorkloadSnap{
			Log:      append([]workload.Record(nil), rec.Log()...),
			Pending:  rec.Pending(),
			Threads:  rec.ThreadCount(),
			Frames:   append([]event.Time(nil), s.ctx.FPS.Times()...),
			LatTotal: s.ctx.Lat.Total,
			LatMax:   s.ctx.Lat.Max,
			LatN:     s.ctx.Lat.N,
		},
		Sched:   s.sys.Snapshot(),
		SoC:     s.soc.Snapshot(),
		Gov:     s.gov.Snapshot(),
		Metrics: s.sampler.Snapshot(),
	}
	if s.therm != nil {
		t := s.therm.Snapshot()
		st.Thermal = &t
	}
	if s.eas != nil {
		e := s.eas.Snapshot()
		st.EAS = &e
	}
	if s.cfg.Digest != nil {
		d := s.cfg.Digest.Snapshot()
		st.Delta = &d
	}
	if got, want := st.PendingEvents(), s.eng.Pending(); got != want {
		return nil, fmt.Errorf("core: engine has %d pending events but the snapshot accounts for %d — unsnapshottable events on the queue", want, got)
	}
	return st, nil
}

// compat verifies that cfg can legally continue from st: identity fields
// must match exactly, and the horizon must not precede the capture point.
// Policy knobs (governor tuning, scheduler kind, thermal envelope) may
// differ — that is what a fork sweep varies.
func compat(cfg Config, st *snapshot.State) error {
	switch {
	case cfg.App.Name != st.App:
		return fmt.Errorf("core: resume app %q, snapshot captured %q", cfg.App.Name, st.App)
	case cfg.Seed != st.Seed:
		return fmt.Errorf("core: resume seed %d, snapshot captured %d", cfg.Seed, st.Seed)
	case cfg.Cores != st.Cores:
		return fmt.Errorf("core: resume cores %v, snapshot captured %v", cfg.Cores, st.Cores)
	case (cfg.Platform != nil) != st.CustomPlatform:
		return fmt.Errorf("core: resume and snapshot disagree on custom platform use")
	case cfg.Duration < st.Time:
		return fmt.Errorf("core: resume duration %v precedes the capture point %v", cfg.Duration, st.Time)
	}
	for _, r := range st.Workload.Log {
		if r.Kind == workload.RecPhase {
			return fmt.Errorf("core: snapshot is a live-session checkpoint (phase %q) — sessions cannot be resumed by core.Resume", r.App)
		}
	}
	return nil
}

// Resume reconstructs a running simulation from a captured State: the
// workload build is re-run in replay mode to rebuild the closure graph and
// RNG position, the engine is reset to the capture point with every pending
// event re-bound under its original ordering key, and each subsystem's
// state is restored. The returned Sim records from the fork point onwards,
// so it can itself be snapshotted again.
//
// The State is read-only: Resume may be called any number of times on the
// same decoded snapshot (that is how a fork sweep shares one prefix).
func Resume(cfg Config, st *snapshot.State) (sim *Sim, err error) {
	cfg = cfg.Normalized()
	if err := snapshotCompat(cfg); err != nil {
		return nil, err
	}
	if err := compat(cfg, st); err != nil {
		return nil, err
	}
	// Replay re-enters workload closures, which report any mismatch between
	// the log and this binary/config by panicking; surface it as an error.
	defer func() {
		if r := recover(); r != nil {
			de, ok := r.(*workload.DivergenceError)
			if !ok {
				panic(r)
			}
			sim, err = nil, fmt.Errorf("core: resume: %w", de)
		}
	}()
	rec := workload.NewReplayer(st.Workload.Log)
	s := newSim(cfg, rec)
	rec.Replay(s.eng)
	if got := rec.ThreadCount(); got != st.Workload.Threads {
		return nil, fmt.Errorf("core: replayed build created %d threads, snapshot recorded %d", got, st.Workload.Threads)
	}
	s.eng.Reset(st.Engine.Now, st.Engine.Seq, st.Engine.Fired)
	if err := s.soc.Restore(&st.SoC); err != nil {
		return nil, err
	}
	if err := s.sys.Restore(&st.Sched); err != nil {
		return nil, err
	}
	// Policy state transfers only between like kinds; a different governor
	// (the classic fork-sweep case) starts fresh at the fork point instead.
	// Static governors transfer nothing either way — their operating point
	// lives in the SoC snapshot, and re-running Start here would split the
	// busy-accounting interval and break byte-identity.
	if cfg.Governor.String() == st.GovKind {
		if err := s.gov.Restore(&st.Gov); err != nil {
			return nil, err
		}
	} else {
		s.gov.Start()
	}
	if err := s.sampler.Restore(&st.Metrics); err != nil {
		return nil, err
	}
	if s.therm != nil {
		if st.Thermal != nil {
			if err := s.therm.Restore(st.Thermal); err != nil {
				return nil, err
			}
		} else {
			// The capturing run had no thermal model: this fork turns the
			// envelope on at the fork point.
			s.therm.Start()
		}
	}
	if s.eas != nil && st.EAS != nil && cfg.Scheduler.String() == st.SchedKind {
		if err := s.eas.Restore(st.EAS); err != nil {
			return nil, err
		}
	}
	if cfg.Digest != nil && st.Delta != nil {
		if err := cfg.Digest.Restore(st.Delta); err != nil {
			return nil, err
		}
	}
	rec.Resched(s.eng, st.Workload.Pending)
	// Replay rebuilt the performance trackers from the log; cross-check them
	// against the captured copies before trusting the fork.
	if err := checkTrackers(s.ctx, st); err != nil {
		return nil, err
	}
	return s, nil
}

// checkTrackers compares the replay-reconstructed FPS/latency trackers with
// the snapshot's captured copies — a disagreement means the replay was not
// faithful and the fork must not be trusted.
func checkTrackers(ctx *workload.Ctx, st *snapshot.State) error {
	times := ctx.FPS.Times()
	if len(times) != len(st.Workload.Frames) {
		return fmt.Errorf("core: replay reconstructed %d frames, snapshot captured %d", len(times), len(st.Workload.Frames))
	}
	for i := range times {
		if times[i] != st.Workload.Frames[i] {
			return fmt.Errorf("core: replayed frame %d at %v, snapshot captured %v", i, times[i], st.Workload.Frames[i])
		}
	}
	if ctx.Lat.Total != st.Workload.LatTotal || ctx.Lat.Max != st.Workload.LatMax || ctx.Lat.N != st.Workload.LatN {
		return fmt.Errorf("core: replayed latency tracker (n=%d total=%v max=%v) disagrees with snapshot (n=%d total=%v max=%v)",
			ctx.Lat.N, ctx.Lat.Total, ctx.Lat.Max, st.Workload.LatN, st.Workload.LatTotal, st.Workload.LatMax)
	}
	return nil
}

// RunForked runs cfg from scratch to at, captures a snapshot, round-trips
// it through the wire codec, and resumes it to completion — the full fork
// path in one call. The Result is byte-identical to Run(cfg)'s.
func RunForked(cfg Config, at event.Time) (Result, error) {
	cfg = cfg.Normalized()
	sim, err := NewSim(cfg)
	if err != nil {
		return Result{}, err
	}
	sim.RunTo(at)
	st, err := sim.Snapshot()
	if err != nil {
		return Result{}, err
	}
	blob, err := snapshot.Encode(st)
	if err != nil {
		return Result{}, err
	}
	decoded, err := snapshot.Decode(blob)
	if err != nil {
		return Result{}, err
	}
	forked, err := Resume(cfg, decoded)
	if err != nil {
		return Result{}, err
	}
	forked.RunTo(cfg.Duration)
	return forked.Finish(), nil
}

// Finish assembles the Result. It must be called exactly once, after the
// clock has reached the configured Duration.
func (s *Sim) Finish() Result {
	if s.finished {
		panic("core: Finish called twice")
	}
	s.finished = true
	cfg, ctx, sampler, soc, sys, therm := s.cfg, s.ctx, s.sampler, s.soc, s.sys, s.therm

	if tel := cfg.Telemetry; tel != nil {
		ft := tel.Histogram("frame_time_ms")
		times := ctx.FPS.Times()
		for i := 1; i < len(times); i++ {
			ft.Observe((times[i] - times[i-1]).Milliseconds())
		}
	}

	res := Result{
		App:       cfg.App.Name,
		Metric:    cfg.App.Metric,
		Duration:  cfg.Duration,
		Cores:     cfg.Cores,
		Scheduler: cfg.Scheduler,

		TLP:    sampler.TLP(),
		Matrix: sampler.MatrixPct(),

		AvgPowerMW: sampler.AvgPowerMW(),
		EnergyMJ:   sampler.EnergyMJ(),

		Interactions: ctx.Lat.N,
		MeanLatency:  ctx.Lat.Mean(),
		TotalLatency: ctx.Lat.Total,
		WorstLatency: ctx.Lat.Max,

		Frames: ctx.FPS.Count(),
		AvgFPS: ctx.FPS.Avg(cfg.Duration),
		MinFPS: ctx.FPS.Min(cfg.Duration),
	}
	res.Eff = sampler.EffPct()
	res.TinyActivePct = sampler.TinyActivePct()
	res.AvgLittleUtil = sampler.AvgUtil(platform.Little)
	res.AvgBigUtil = sampler.AvgUtil(platform.Big)

	lc := soc.ClusterByType(platform.Little)
	bc := soc.ClusterByType(platform.Big)
	res.LittleFreqs = lc.FreqsMHz
	res.BigFreqs = bc.FreqsMHz
	res.LittleResidency = sampler.ResidencyPct(platform.Little, lc.FreqsMHz)
	res.BigResidency = sampler.ResidencyPct(platform.Big, bc.FreqsMHz)

	for _, t := range sys.Tasks() {
		res.HMPMigrations += t.Migrations
		res.TotalWorkGc += t.TotalWork / 1e9
		res.TaskStats = append(res.TaskStats, TaskStat{
			Name:       t.Name,
			EnergyJ:    t.EnergyMJ / 1000,
			LittleMs:   t.LittleRanNs.Milliseconds(),
			BigMs:      t.BigRanNs.Milliseconds(),
			TinyMs:     t.TinyRanNs.Milliseconds(),
			Migrations: t.Migrations,
		})
	}
	sort.Slice(res.TaskStats, func(i, j int) bool {
		return res.TaskStats[i].EnergyJ > res.TaskStats[j].EnergyJ
	})
	half := cfg.Duration / 2
	res.FPSFirstHalf = float64(ctx.FPS.CountIn(0, half)) / half.Seconds()
	res.FPSSecondHalf = float64(ctx.FPS.CountIn(half, cfg.Duration)) / (cfg.Duration - half).Seconds()
	if therm != nil {
		res.MaxTempC = therm.MaxTempC
		res.ThrottledPct = therm.ThrottledPct(cfg.Duration)
	}
	if cfg.Profiler != nil {
		snap := cfg.Profiler.Snapshot(cfg.Duration)
		res.Profile = &snap
	}
	// Finish after the result is assembled so reconciliation can never
	// perturb what the caller observes.
	if cfg.Check != nil {
		cfg.Check.Finish(cfg.Duration, res.EnergyMJ)
	}
	return res
}
