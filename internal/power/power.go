// Package power models whole-system power the way the paper measures it with
// a Monsoon meter (§II): a base rail covering everything outside the CPU
// clusters, plus per-core power that combines switching power (C·V²·f scaled
// by utilization) with an activity overhead term capturing uncore and DRAM
// power that tracks CPU activity. Idle-but-online cores retain a small
// fraction of the overhead (clock gating).
//
// The model is calibrated against the paper's anchors:
//   - a big core at 1.3 GHz fully utilized draws ~2.3x the system power of a
//     little core at 1.3 GHz (§III-A),
//   - a big core at 0.8 GHz still draws ~1.5x a little core at 1.3 GHz,
//   - power-versus-utilization slope grows steeply with frequency (Fig. 6).
package power

import (
	"biglittle/internal/event"
	"biglittle/internal/platform"
)

// TypeParams holds per-core-type model coefficients.
type TypeParams struct {
	// DynCoefMW scales switching power: P_dyn = DynCoefMW · V² · f(GHz·1000) · util, in mW.
	DynCoefMW float64
	// ActiveOverheadMW is the activity-proportional overhead (core static +
	// uncore + DRAM) at full utilization, scaled by voltage.
	ActiveOverheadMW float64
	// IdleFrac of the overhead remains when the core is online but idle.
	IdleFrac float64
	// Voltage curve endpoints across the frequency table.
	VMin, VMax float64
	FMin, FMax int // MHz, matching the cluster frequency table
}

// Voltage returns the supply voltage at fMHz by linear interpolation.
func (tp TypeParams) Voltage(fMHz int) float64 {
	if fMHz <= tp.FMin {
		return tp.VMin
	}
	if fMHz >= tp.FMax {
		return tp.VMax
	}
	frac := float64(fMHz-tp.FMin) / float64(tp.FMax-tp.FMin)
	return tp.VMin + frac*(tp.VMax-tp.VMin)
}

// Params is the full system power model.
type Params struct {
	BaseMW float64 // everything outside the CPU subsystem, screen off
	Little TypeParams
	Big    TypeParams
	// Tiny parameterizes the hypothetical third core type of the paper's
	// §VI-B (see platform.Exynos5422Tiny).
	Tiny TypeParams
}

// Default returns the calibrated Exynos 5422 model.
func Default() Params {
	return Params{
		BaseMW: 250,
		Little: TypeParams{
			DynCoefMW:        0.308,
			ActiveOverheadMW: 60,
			IdleFrac:         0.05,
			VMin:             0.90, VMax: 1.10,
			FMin: 500, FMax: 1300,
		},
		Big: TypeParams{
			DynCoefMW:        0.535,
			ActiveOverheadMW: 670,
			IdleFrac:         0.03,
			VMin:             0.90, VMax: 1.25,
			FMin: 800, FMax: 1900,
		},
		Tiny: TypeParams{
			DynCoefMW:        0.11,
			ActiveOverheadMW: 16,
			IdleFrac:         0.05,
			VMin:             0.85, VMax: 0.85,
			FMin: 600, FMax: 600,
		},
	}
}

// Snapdragon810Params returns a power model for the Snapdragon 810-class
// preset: the A53 little cores are slightly more efficient than the A7s,
// while the 20nm A57 cluster is notoriously power-hungry at its top bins.
func Snapdragon810Params() Params {
	return Params{
		BaseMW: 260,
		Little: TypeParams{
			DynCoefMW:        0.27,
			ActiveOverheadMW: 55,
			IdleFrac:         0.05,
			VMin:             0.85, VMax: 1.05,
			FMin: 400, FMax: 1500,
		},
		Big: TypeParams{
			DynCoefMW:        0.62,
			ActiveOverheadMW: 740,
			IdleFrac:         0.03,
			VMin:             0.90, VMax: 1.30,
			FMin: 600, FMax: 2000,
		},
		Tiny: Default().Tiny,
	}
}

func (p Params) typeParams(t platform.CoreType) TypeParams {
	switch t {
	case platform.Big:
		return p.Big
	case platform.Tiny:
		return p.Tiny
	default:
		return p.Little
	}
}

// CorePowerMW returns one online core's power at frequency fMHz and average
// utilization util in [0,1]. Offline cores draw nothing (power gated).
func (p Params) CorePowerMW(t platform.CoreType, fMHz int, util float64) float64 {
	return p.CorePowerDeepMW(t, fMHz, util, 0)
}

// CorePowerDeepMW extends CorePowerMW with the fraction of the interval the
// core spent in the deep idle state, during which the idle overhead is
// power-gated away (cpuidle cluster sleep).
func (p Params) CorePowerDeepMW(t platform.CoreType, fMHz int, util, deepFrac float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	if deepFrac < 0 {
		deepFrac = 0
	}
	if deepFrac > 1-util {
		deepFrac = 1 - util
	}
	tp := p.typeParams(t)
	v := tp.Voltage(fMHz)
	dyn := tp.DynCoefMW * v * v * float64(fMHz) * util
	// Overhead: full share while active, IdleFrac share while in shallow
	// idle, nothing while deep idle.
	overhead := tp.ActiveOverheadMW * v * (util + tp.IdleFrac*(1-util-deepFrac))
	return dyn + overhead
}

// CoreLoad describes one online core's state for a system power sample.
type CoreLoad struct {
	Type platform.CoreType
	MHz  int
	Util float64
	// DeepFrac is the fraction of the interval spent in deep idle.
	DeepFrac float64
}

// SystemPowerMW returns whole-system power for a set of online core states.
func (p Params) SystemPowerMW(cores []CoreLoad) float64 {
	total := p.BaseMW
	for _, c := range cores {
		total += p.CorePowerDeepMW(c.Type, c.MHz, c.Util, c.DeepFrac)
	}
	return total
}

// Meter integrates power over simulated time, mirroring the Monsoon meter's
// role: feed it (interval, milliwatt) samples and read average power and
// total energy at the end.
type Meter struct {
	energyMJ float64 // millijoules (mW × s)
	elapsed  event.Time
}

// Add accrues dt of operation at mw milliwatts.
func (m *Meter) Add(dt event.Time, mw float64) {
	if dt <= 0 {
		return
	}
	m.energyMJ += mw * dt.Seconds()
	m.elapsed += dt
}

// EnergyMJ returns total accumulated energy in millijoules.
func (m *Meter) EnergyMJ() float64 { return m.energyMJ }

// Elapsed returns total metered time.
func (m *Meter) Elapsed() event.Time { return m.elapsed }

// AvgMW returns average power over the metered interval.
func (m *Meter) AvgMW() float64 {
	if m.elapsed == 0 {
		return 0
	}
	return m.energyMJ / m.elapsed.Seconds()
}

// Restore overwrites the meter's accumulators with values captured by a
// whole-simulation snapshot.
func (m *Meter) Restore(energyMJ float64, elapsed event.Time) {
	m.energyMJ = energyMJ
	m.elapsed = elapsed
}
