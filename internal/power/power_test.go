package power

import (
	"math"
	"testing"
	"testing/quick"

	"biglittle/internal/event"
	"biglittle/internal/platform"
)

func system1(p Params, t platform.CoreType, mhz int, util float64) float64 {
	return p.SystemPowerMW([]CoreLoad{{Type: t, MHz: mhz, Util: util}})
}

// Calibration anchor (§III-A): big@1.3GHz ~2.3x little@1.3GHz system power
// at full utilization; big@0.8GHz still >= ~1.5x little@1.3GHz.
func TestPaperPowerRatios(t *testing.T) {
	p := Default()
	little13 := system1(p, platform.Little, 1300, 1)
	big13 := system1(p, platform.Big, 1300, 1)
	big08 := system1(p, platform.Big, 800, 1)

	if r := big13 / little13; r < 2.0 || r > 2.6 {
		t.Errorf("big@1.3/little@1.3 = %.2f, want ~2.3", r)
	}
	if r := big08 / little13; r < 1.35 || r > 1.7 {
		t.Errorf("big@0.8/little@1.3 = %.2f, want ~1.5", r)
	}
}

// Fig. 6: power grows with utilization, with a much steeper slope at high
// frequency, and the big and little cores cover distinct power ranges.
func TestUtilizationSlopes(t *testing.T) {
	p := Default()
	for _, tc := range []struct {
		typ       platform.CoreType
		low, high int
	}{
		{platform.Little, 500, 1300},
		{platform.Big, 800, 1900},
	} {
		slopeLow := system1(p, tc.typ, tc.low, 1.0) - system1(p, tc.typ, tc.low, 0.0)
		slopeHigh := system1(p, tc.typ, tc.high, 1.0) - system1(p, tc.typ, tc.high, 0.0)
		if slopeHigh <= slopeLow*1.5 {
			t.Errorf("%v: high-freq slope %.0f not much steeper than low-freq %.0f",
				tc.typ, slopeHigh, slopeLow)
		}
	}
	// Distinct ranges: big minimum-frequency full power exceeds little
	// maximum-frequency full power.
	if system1(p, platform.Big, 800, 1) <= system1(p, platform.Little, 1300, 1) {
		t.Error("big and little power ranges overlap completely")
	}
}

func TestMonotonicInUtilAndFreq(t *testing.T) {
	p := Default()
	for _, typ := range []platform.CoreType{platform.Little, platform.Big} {
		prev := -1.0
		for u := 0.0; u <= 1.0; u += 0.1 {
			got := p.CorePowerMW(typ, 1300, u)
			if got < prev {
				t.Fatalf("%v: power not monotone in util at %.1f", typ, u)
			}
			prev = got
		}
	}
	prev := -1.0
	for f := 800; f <= 1900; f += 100 {
		got := p.CorePowerMW(platform.Big, f, 0.7)
		if got < prev {
			t.Fatalf("big power not monotone in frequency at %d", f)
		}
		prev = got
	}
}

func TestUtilClamping(t *testing.T) {
	p := Default()
	if got := p.CorePowerMW(platform.Little, 1000, -0.5); got != p.CorePowerMW(platform.Little, 1000, 0) {
		t.Error("negative util not clamped")
	}
	if got := p.CorePowerMW(platform.Little, 1000, 1.5); got != p.CorePowerMW(platform.Little, 1000, 1) {
		t.Error("util > 1 not clamped")
	}
}

func TestVoltageInterpolation(t *testing.T) {
	tp := Default().Big
	if v := tp.Voltage(800); v != tp.VMin {
		t.Errorf("V(800) = %.3f, want %.3f", v, tp.VMin)
	}
	if v := tp.Voltage(1900); v != tp.VMax {
		t.Errorf("V(1900) = %.3f, want %.3f", v, tp.VMax)
	}
	mid := tp.Voltage(1350)
	if mid <= tp.VMin || mid >= tp.VMax {
		t.Errorf("V(1350) = %.3f not strictly between endpoints", mid)
	}
	if v := tp.Voltage(100); v != tp.VMin {
		t.Errorf("below-range voltage %.3f, want clamped to VMin", v)
	}
	if v := tp.Voltage(5000); v != tp.VMax {
		t.Errorf("above-range voltage %.3f, want clamped to VMax", v)
	}
}

func TestSystemPowerAdds(t *testing.T) {
	p := Default()
	base := p.SystemPowerMW(nil)
	if base != p.BaseMW {
		t.Fatalf("empty system power %.0f, want base %.0f", base, p.BaseMW)
	}
	one := system1(p, platform.Little, 1000, 0.5)
	two := p.SystemPowerMW([]CoreLoad{
		{Type: platform.Little, MHz: 1000, Util: 0.5},
		{Type: platform.Little, MHz: 1000, Util: 0.5},
	})
	wantDelta := one - base
	if math.Abs((two-one)-wantDelta) > 1e-9 {
		t.Errorf("second core added %.2f, want %.2f", two-one, wantDelta)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Add(event.Second, 1000)   // 1 J
	m.Add(event.Second/2, 2000) // 1 J
	if e := m.EnergyMJ(); math.Abs(e-2000) > 1e-6 {
		t.Fatalf("energy %.3f mJ, want 2000", e)
	}
	if avg := m.AvgMW(); math.Abs(avg-2000.0/1.5) > 1e-6 {
		t.Fatalf("avg %.3f mW, want %.3f", avg, 2000.0/1.5)
	}
	if m.Elapsed() != event.Second+event.Second/2 {
		t.Fatalf("elapsed %v", m.Elapsed())
	}
	m.Add(-5, 100) // ignored
	m.Add(0, 100)  // ignored
	if m.Elapsed() != event.Second+event.Second/2 {
		t.Fatal("non-positive intervals must be ignored")
	}
}

func TestMeterZeroValue(t *testing.T) {
	var m Meter
	if m.AvgMW() != 0 || m.EnergyMJ() != 0 {
		t.Fatal("zero meter not zero")
	}
}

// Property: system power is base + sum of per-core powers, always >= base,
// and per-core power is non-negative.
func TestPropertySystemPower(t *testing.T) {
	p := Default()
	f := func(utils []float64, mhzSeeds []uint16) bool {
		n := len(utils)
		if len(mhzSeeds) < n {
			n = len(mhzSeeds)
		}
		var loads []CoreLoad
		sum := p.BaseMW
		for i := 0; i < n; i++ {
			typ := platform.Little
			lo, hi := 500, 1300
			if i%2 == 1 {
				typ, lo, hi = platform.Big, 800, 1900
			}
			mhz := lo + int(mhzSeeds[i])%(hi-lo+1)
			cp := p.CorePowerMW(typ, mhz, utils[i])
			if cp < 0 {
				return false
			}
			sum += cp
			loads = append(loads, CoreLoad{Type: typ, MHz: mhz, Util: utils[i]})
		}
		got := p.SystemPowerMW(loads)
		return math.Abs(got-sum) < 1e-6 && got >= p.BaseMW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapdragonPowerShape(t *testing.T) {
	p := Snapdragon810Params()
	// The A57 cluster is hungrier than the A15 at its top bin...
	ex := Default()
	if p.CorePowerMW(platform.Big, 2000, 1) <= ex.CorePowerMW(platform.Big, 1900, 1) {
		t.Error("SD810 big top bin should exceed the Exynos A15's")
	}
	// ...while the A53 little cores are a bit leaner than the A7s.
	if p.CorePowerMW(platform.Little, 1300, 1) >= ex.CorePowerMW(platform.Little, 1300, 1) {
		t.Error("A53 should be leaner than A7 at the same frequency")
	}
	// Monotone in util as usual.
	if p.CorePowerMW(platform.Big, 1500, 0.2) >= p.CorePowerMW(platform.Big, 1500, 0.9) {
		t.Error("not monotone")
	}
}
