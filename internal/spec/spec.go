// Package spec loads application workload models from JSON, so new
// workloads can be defined and simulated without recompiling. The format
// mirrors the workload primitives: named threads, think-time interaction
// pipelines with boosts and IO delays, periodic activities, Poisson bursts,
// frame loops, background hum, and touch kicks.
//
// Example:
//
//	{
//	  "name": "chat_app",
//	  "metric": "latency",
//	  "threads": [
//	    {"name": "ui", "speedup": 1.5},
//	    {"name": "crypto", "speedup": 2.0}
//	  ],
//	  "interactions": [{
//	    "think_ms": 900, "think_cv": 0.5,
//	    "boost": ["ui"], "boost_load": 800,
//	    "stages": [
//	      {"threads": ["ui"], "work_mc": 1.2, "cv": 0.4},
//	      {"threads": ["crypto"], "work_mc": 8, "cv": 0.5, "post_delay_ms": 20}
//	    ]
//	  }],
//	  "poisson": [{"thread": "ui", "mean_ms": 200, "work_mc": 0.3, "cv": 0.5}],
//	  "hum": {"mean_ms": 10, "p2": 0.5, "p3": 0.1}
//	}
package spec

import (
	"encoding/json"
	"fmt"

	"biglittle/internal/apps"
	"biglittle/internal/event"
	"biglittle/internal/workload"
)

// File is the top-level JSON document.
type File struct {
	Name   string `json:"name"`
	Metric string `json:"metric"` // "latency" or "fps"

	Threads []ThreadSpec `json:"threads"`

	Interactions []InteractionSpec `json:"interactions,omitempty"`
	Periodics    []PeriodicSpec    `json:"periodics,omitempty"`
	Poisson      []PoissonSpec     `json:"poisson,omitempty"`
	Frames       *FrameSpec        `json:"frames,omitempty"`
	Hum          *HumSpec          `json:"hum,omitempty"`
	TouchKicksMs float64           `json:"touch_kicks_ms,omitempty"`
}

// ThreadSpec declares a named thread.
type ThreadSpec struct {
	Name    string  `json:"name"`
	Speedup float64 `json:"speedup"`
}

// StageSpec is one pipeline stage.
type StageSpec struct {
	Threads     []string `json:"threads"`
	WorkMc      float64  `json:"work_mc"`
	CV          float64  `json:"cv,omitempty"`
	HeavyP      float64  `json:"heavy_p,omitempty"`
	HeavyMult   float64  `json:"heavy_mult,omitempty"`
	PostDelayMs float64  `json:"post_delay_ms,omitempty"`
}

// InteractionSpec is a think-time interaction loop.
type InteractionSpec struct {
	ThinkMs   float64     `json:"think_ms"`
	ThinkCV   float64     `json:"think_cv,omitempty"`
	Boost     []string    `json:"boost,omitempty"`
	BoostLoad int         `json:"boost_load,omitempty"`
	Silent    bool        `json:"silent,omitempty"`
	Stages    []StageSpec `json:"stages"`
}

// PeriodicSpec is a fixed-period activity.
type PeriodicSpec struct {
	Thread   string  `json:"thread"`
	PeriodMs float64 `json:"period_ms"`
	WorkMc   float64 `json:"work_mc"`
	CV       float64 `json:"cv,omitempty"`
}

// PoissonSpec is exponentially-spaced background activity.
type PoissonSpec struct {
	Thread string  `json:"thread"`
	MeanMs float64 `json:"mean_ms"`
	WorkMc float64 `json:"work_mc"`
	CV     float64 `json:"cv,omitempty"`
}

// FrameSpec is a frame pipeline (FPS apps).
type FrameSpec struct {
	PeriodMs    float64          `json:"period_ms"`
	Logic       FrameStageSpec   `json:"logic"`
	Parallel    []FrameStageSpec `json:"parallel,omitempty"`
	PauseGapMs  float64          `json:"pause_gap_ms,omitempty"`
	PauseMeanMs float64          `json:"pause_mean_ms,omitempty"`
}

// FrameStageSpec is one thread's per-frame work.
type FrameStageSpec struct {
	Thread string  `json:"thread"`
	WorkMc float64 `json:"work_mc"`
	CV     float64 `json:"cv,omitempty"`
}

// HumSpec is ambient background activity.
type HumSpec struct {
	MeanMs float64 `json:"mean_ms"`
	P2     float64 `json:"p2,omitempty"`
	P3     float64 `json:"p3,omitempty"`
}

func ms(v float64) event.Time { return event.Time(v * float64(event.Millisecond)) }

// Parse validates a JSON workload document and compiles it to an App.
func Parse(data []byte) (apps.App, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return apps.App{}, fmt.Errorf("spec: %w", err)
	}
	return Compile(f)
}

// Compile validates a File and builds the App.
func Compile(f File) (apps.App, error) {
	if f.Name == "" {
		return apps.App{}, fmt.Errorf("spec: missing name")
	}
	var metric apps.Metric
	switch f.Metric {
	case "latency", "":
		metric = apps.Latency
	case "fps":
		metric = apps.FPS
	default:
		return apps.App{}, fmt.Errorf("spec: metric %q must be latency or fps", f.Metric)
	}
	if len(f.Threads) == 0 {
		return apps.App{}, fmt.Errorf("spec: at least one thread required")
	}
	declared := map[string]bool{}
	for _, th := range f.Threads {
		if th.Name == "" {
			return apps.App{}, fmt.Errorf("spec: thread with empty name")
		}
		if declared[th.Name] {
			return apps.App{}, fmt.Errorf("spec: duplicate thread %q", th.Name)
		}
		declared[th.Name] = true
	}
	resolve := func(where, name string) error {
		if !declared[name] {
			return fmt.Errorf("spec: %s references undeclared thread %q", where, name)
		}
		return nil
	}
	for i, in := range f.Interactions {
		if len(in.Stages) == 0 {
			return apps.App{}, fmt.Errorf("spec: interaction %d has no stages", i)
		}
		if in.ThinkMs <= 0 {
			return apps.App{}, fmt.Errorf("spec: interaction %d needs think_ms > 0", i)
		}
		for _, b := range in.Boost {
			if err := resolve("boost", b); err != nil {
				return apps.App{}, err
			}
		}
		for si, st := range in.Stages {
			if len(st.Threads) == 0 || st.WorkMc <= 0 {
				return apps.App{}, fmt.Errorf("spec: interaction %d stage %d needs threads and work_mc", i, si)
			}
			for _, name := range st.Threads {
				if err := resolve("stage", name); err != nil {
					return apps.App{}, err
				}
			}
		}
	}
	for i, p := range f.Periodics {
		if err := resolve("periodic", p.Thread); err != nil {
			return apps.App{}, err
		}
		if p.PeriodMs <= 0 || p.WorkMc <= 0 {
			return apps.App{}, fmt.Errorf("spec: periodic %d needs period_ms and work_mc", i)
		}
	}
	for i, p := range f.Poisson {
		if err := resolve("poisson", p.Thread); err != nil {
			return apps.App{}, err
		}
		if p.MeanMs <= 0 || p.WorkMc <= 0 {
			return apps.App{}, fmt.Errorf("spec: poisson %d needs mean_ms and work_mc", i)
		}
	}
	if fr := f.Frames; fr != nil {
		if fr.PeriodMs <= 0 {
			return apps.App{}, fmt.Errorf("spec: frames needs period_ms")
		}
		if err := resolve("frames.logic", fr.Logic.Thread); err != nil {
			return apps.App{}, err
		}
		for _, st := range fr.Parallel {
			if err := resolve("frames.parallel", st.Thread); err != nil {
				return apps.App{}, err
			}
		}
	}

	spec := f // captured copy
	return apps.App{
		Name:   spec.Name,
		Desc:   "loaded from spec",
		Metric: metric,
		Build:  func(ctx *workload.Ctx) { build(ctx, spec) },
	}, nil
}

func build(ctx *workload.Ctx, f File) {
	threads := map[string]*workload.Thread{}
	for _, th := range f.Threads {
		threads[th.Name] = workload.NewThread(ctx, f.Name+"."+th.Name, th.Speedup)
	}

	for _, in := range f.Interactions {
		in := in
		var boost []*workload.Thread
		for _, b := range in.Boost {
			boost = append(boost, threads[b])
		}
		workload.InteractionLoop(ctx, workload.InteractionConfig{
			Think: ms(in.ThinkMs), ThinkCV: in.ThinkCV,
			Boost: boost, BoostLoad: in.BoostLoad, Silent: in.Silent,
			Stages: func() []workload.Stage {
				stages := make([]workload.Stage, len(in.Stages))
				for i, st := range in.Stages {
					var ths []*workload.Thread
					for _, name := range st.Threads {
						ths = append(ths, threads[name])
					}
					stages[i] = workload.Stage{
						Threads:   ths,
						Work:      st.WorkMc * workload.Mc,
						CV:        st.CV,
						HeavyP:    st.HeavyP,
						HeavyMult: st.HeavyMult,
						PostDelay: ms(st.PostDelayMs),
					}
				}
				return stages
			},
		})
	}
	for _, p := range f.Periodics {
		workload.Periodic(ctx, threads[p.Thread], workload.PeriodicConfig{
			Period: ms(p.PeriodMs), Work: p.WorkMc * workload.Mc, CV: p.CV,
		})
	}
	for _, p := range f.Poisson {
		workload.PoissonBursts(ctx, threads[p.Thread], ms(p.MeanMs), p.WorkMc*workload.Mc, p.CV)
	}
	if fr := f.Frames; fr != nil {
		cfg := apps.FrameConfig{
			Period:    ms(fr.PeriodMs),
			Logic:     apps.FrameStageConfig{Thread: threads[fr.Logic.Thread], WorkMc: fr.Logic.WorkMc, CV: fr.Logic.CV},
			PauseGap:  ms(fr.PauseGapMs),
			PauseMean: ms(fr.PauseMeanMs),
		}
		for _, st := range fr.Parallel {
			cfg.Parallel = append(cfg.Parallel, apps.FrameStageConfig{
				Thread: threads[st.Thread], WorkMc: st.WorkMc, CV: st.CV,
			})
		}
		apps.FrameLoop(ctx, cfg)
	}
	if f.Hum != nil && f.Hum.MeanMs > 0 {
		hum(ctx, f.Name, ms(f.Hum.MeanMs), f.Hum.P2, f.Hum.P3)
	}
	if f.TouchKicksMs > 0 {
		workload.TouchKicks(ctx, ms(f.TouchKicksMs))
	}
}

// hum mirrors the bundled apps' background activity for spec-loaded apps.
func hum(ctx *workload.Ctx, prefix string, meanGap event.Time, p2, p3 float64) {
	a := workload.NewThread(ctx, prefix+".sys1", 1.3)
	b := workload.NewThread(ctx, prefix+".sys2", 1.3)
	c := workload.NewThread(ctx, prefix+".sys3", 1.3)
	var arrive func(now event.Time)
	arrive = func(now event.Time) {
		if now >= ctx.Duration {
			return
		}
		a.Push(ctx.Jitter(0.25*workload.Mc, 0.5), nil)
		if ctx.Rng.Float64() < p2 {
			b.Push(ctx.Jitter(0.3*workload.Mc, 0.5), nil)
		}
		if ctx.Rng.Float64() < p3 {
			c.Push(ctx.Jitter(0.25*workload.Mc, 0.5), nil)
		}
		ctx.At(now+ctx.Exp(meanGap), arrive)
	}
	ctx.At(ctx.Exp(meanGap), arrive)
}
