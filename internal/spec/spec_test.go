package spec

import (
	"strings"
	"testing"

	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/event"
)

const chatApp = `{
  "name": "chat_app",
  "metric": "latency",
  "threads": [
    {"name": "ui", "speedup": 1.5},
    {"name": "crypto", "speedup": 2.0},
    {"name": "net", "speedup": 1.3}
  ],
  "interactions": [{
    "think_ms": 600, "think_cv": 0.5,
    "boost": ["ui"], "boost_load": 800,
    "stages": [
      {"threads": ["ui"], "work_mc": 1.2, "cv": 0.4},
      {"threads": ["crypto"], "work_mc": 8, "cv": 0.5, "post_delay_ms": 15},
      {"threads": ["net"], "work_mc": 1, "post_delay_ms": 30}
    ]
  }],
  "poisson": [{"thread": "net", "mean_ms": 300, "work_mc": 0.8, "cv": 0.5}],
  "hum": {"mean_ms": 10, "p2": 0.5, "p3": 0.1}
}`

const gameApp = `{
  "name": "mini_game",
  "metric": "fps",
  "threads": [
    {"name": "logic", "speedup": 1.6},
    {"name": "render", "speedup": 1.8}
  ],
  "frames": {
    "period_ms": 16.7,
    "logic": {"thread": "logic", "work_mc": 2, "cv": 0.3},
    "parallel": [{"thread": "render", "work_mc": 3.5, "cv": 0.3}]
  },
  "touch_kicks_ms": 400
}`

func TestParseAndRunLatencyApp(t *testing.T) {
	app, err := Parse([]byte(chatApp))
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "chat_app" || app.Metric != apps.Latency {
		t.Fatalf("parsed %s %v", app.Name, app.Metric)
	}
	cfg := core.DefaultConfig(app)
	cfg.Duration = 6 * event.Second
	r := core.Run(cfg)
	if r.Interactions == 0 || r.MeanLatency <= 0 {
		t.Fatalf("spec app produced no interactions: %+v", r.Interactions)
	}
	// The fixed delays (45 ms) bound the latency from below.
	if r.MeanLatency < 45*event.Millisecond {
		t.Fatalf("latency %v below the spec's fixed delays", r.MeanLatency)
	}
	// Threads must exist with the spec's names.
	found := false
	for _, ts := range r.TaskStats {
		if ts.Name == "chat_app.crypto" {
			found = true
		}
	}
	if !found {
		t.Fatal("crypto thread missing from task stats")
	}
}

func TestParseAndRunFPSApp(t *testing.T) {
	app, err := Parse([]byte(gameApp))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(app)
	cfg.Duration = 6 * event.Second
	r := core.Run(cfg)
	if r.AvgFPS < 50 || r.AvgFPS > 61 {
		t.Fatalf("mini game %f FPS, want ~60", r.AvgFPS)
	}
}

func TestParseDeterministic(t *testing.T) {
	app, _ := Parse([]byte(chatApp))
	run := func() core.Result {
		cfg := core.DefaultConfig(app)
		cfg.Duration = 3 * event.Second
		return core.Run(cfg)
	}
	a, b := run(), run()
	if a.Interactions != b.Interactions || a.AvgPowerMW != b.AvgPowerMW {
		t.Fatal("spec app nondeterministic")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"bad json", `{`, "spec:"},
		{"missing name", `{"threads":[{"name":"a"}]}`, "missing name"},
		{"bad metric", `{"name":"x","metric":"speed","threads":[{"name":"a"}]}`, "metric"},
		{"no threads", `{"name":"x"}`, "at least one thread"},
		{"dup thread", `{"name":"x","threads":[{"name":"a"},{"name":"a"}]}`, "duplicate"},
		{"empty thread name", `{"name":"x","threads":[{"name":""}]}`, "empty name"},
		{"unknown stage thread", `{"name":"x","threads":[{"name":"a"}],
			"interactions":[{"think_ms":100,"stages":[{"threads":["b"],"work_mc":1}]}]}`, "undeclared"},
		{"unknown boost", `{"name":"x","threads":[{"name":"a"}],
			"interactions":[{"think_ms":100,"boost":["zz"],"stages":[{"threads":["a"],"work_mc":1}]}]}`, "undeclared"},
		{"no stages", `{"name":"x","threads":[{"name":"a"}],
			"interactions":[{"think_ms":100}]}`, "no stages"},
		{"zero think", `{"name":"x","threads":[{"name":"a"}],
			"interactions":[{"stages":[{"threads":["a"],"work_mc":1}]}]}`, "think_ms"},
		{"bad periodic", `{"name":"x","threads":[{"name":"a"}],
			"periodics":[{"thread":"a","period_ms":0,"work_mc":1}]}`, "period_ms"},
		{"bad poisson thread", `{"name":"x","threads":[{"name":"a"}],
			"poisson":[{"thread":"q","mean_ms":5,"work_mc":1}]}`, "undeclared"},
		{"bad frame thread", `{"name":"x","threads":[{"name":"a"}],
			"frames":{"period_ms":16,"logic":{"thread":"nope","work_mc":1}}}`, "undeclared"},
		{"frame no period", `{"name":"x","threads":[{"name":"a"}],
			"frames":{"logic":{"thread":"a","work_mc":1}}}`, "period_ms"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.doc))
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDefaultMetricIsLatency(t *testing.T) {
	app, err := Parse([]byte(`{"name":"x","threads":[{"name":"a"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if app.Metric != apps.Latency {
		t.Fatal("default metric")
	}
}

func FuzzParse(f *testing.F) {
	f.Add([]byte(chatApp))
	f.Add([]byte(gameApp))
	f.Add([]byte(`{"name":"x","threads":[{"name":"a"}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		app, err := Parse(data)
		if err != nil {
			return
		}
		// Any document Parse accepts must build and run without panicking.
		cfg := core.DefaultConfig(app)
		cfg.Duration = 200 * event.Millisecond
		core.Run(cfg)
	})
}
