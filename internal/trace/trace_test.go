package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
	"biglittle/internal/telemetry"
	"biglittle/internal/xray"
)

func rig() (*event.Engine, *sched.System) {
	eng := event.New()
	sys := sched.New(eng, platform.Exynos5422(), sched.DefaultConfig())
	sys.Start()
	return eng, sys
}

func TestCapturesRunningTasks(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 100*event.Millisecond)
	task := sys.NewTask("worker", 1)
	task.Pin(2)
	sys.Push(task, 1e12)
	eng.Run(100 * event.Millisecond)

	if len(r.Samples) == 0 {
		t.Fatal("no samples")
	}
	seen := false
	for _, s := range r.Samples {
		if s.TaskOnCore[2] == task.ID {
			seen = true
		}
		for c, id := range s.TaskOnCore {
			if c != 2 && id != -1 {
				t.Fatalf("unexpected occupant %d on core %d", id, c)
			}
		}
		if len(s.ClusterMHz) != 2 {
			t.Fatalf("cluster freqs %v", s.ClusterMHz)
		}
	}
	if !seen {
		t.Fatal("pinned worker never observed on its core")
	}
}

func TestWindowRespected(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 50*event.Millisecond, 60*event.Millisecond)
	eng.Run(200 * event.Millisecond)
	if len(r.Samples) == 0 || len(r.Samples) > 11 {
		t.Fatalf("%d samples for a 10ms window at 1ms ticks", len(r.Samples))
	}
	for _, s := range r.Samples {
		if s.At < 50*event.Millisecond || s.At >= 60*event.Millisecond {
			t.Fatalf("sample at %v outside window", s.At)
		}
	}
}

func TestRenderContainsTimelineAndLegend(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 50*event.Millisecond)
	task := sys.NewTask("render.thread", 1)
	task.Pin(0)
	var gen func(now event.Time)
	gen = func(now event.Time) {
		sys.Push(task, 3e6)
		eng.At(now+10*event.Millisecond, gen)
	}
	gen(0)
	eng.Run(50 * event.Millisecond)

	out := r.Render(80)
	if !strings.Contains(out, "cpu0") || !strings.Contains(out, "cpu7") {
		t.Fatalf("missing core rows:\n%s", out)
	}
	if !strings.Contains(out, "a=render.thread") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "little cluster MHz") || !strings.Contains(out, "big    cluster MHz") {
		t.Fatalf("missing frequency summary:\n%s", out)
	}
	// cpu0's row must contain the task glyph.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cpu0") && !strings.Contains(line, "a") {
			t.Fatalf("cpu0 row has no activity: %q", line)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	_, sys := rig()
	r := Attach(sys, 0, 0)
	if out := r.Render(0); !strings.Contains(out, "no samples") {
		t.Fatalf("empty render: %q", out)
	}
}

func TestRenderDownsamples(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, event.Second)
	eng.Run(event.Second)
	out := r.Render(100)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cpu0") {
			inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			if len(inner) > 110 {
				t.Fatalf("row not downsampled: %d columns", len(inner))
			}
		}
	}
}

func TestResidency(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 200*event.Millisecond)
	little := sys.NewTask("on.little", 1)
	little.Pin(1)
	big := sys.NewTask("on.big", 1)
	big.Pin(5)
	sys.Push(little, 1e12)
	sys.Push(big, 1e12)
	eng.Run(200 * event.Millisecond)

	res := r.Residency()
	if res["on.little"].Run[platform.Little] < 0.99 {
		t.Fatalf("little residency %v", res["on.little"])
	}
	if res["on.big"].Run[platform.Big] < 0.99 {
		t.Fatalf("big residency %v", res["on.big"])
	}
}

func TestResidencyReportsWait(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 200*event.Millisecond)
	// Two long-running tasks pinned to one core: at every tick one runs and
	// the other waits, so each should show roughly a 50% wait share.
	a := sys.NewTask("rq.a", 1)
	a.Pin(1)
	b := sys.NewTask("rq.b", 1)
	b.Pin(1)
	sys.Push(a, 1e12)
	sys.Push(b, 1e12)
	eng.Run(200 * event.Millisecond)

	res := r.Residency()
	for _, name := range []string{"rq.a", "rq.b"} {
		tr := res[name]
		if tr.RunTicks == 0 || tr.WaitTicks == 0 {
			t.Fatalf("%s: run %d wait %d ticks, want both non-zero", name, tr.RunTicks, tr.WaitTicks)
		}
		if share := tr.WaitShare(); share < 0.3 || share > 0.7 {
			t.Fatalf("%s: wait share %.2f, want ~0.5", name, share)
		}
	}
	// A solo task never waits.
	if solo := res["on.little"]; solo.WaitTicks != 0 {
		t.Fatalf("absent task reported waiting: %+v", solo)
	}
}

func TestChainsExistingHook(t *testing.T) {
	eng, sys := rig()
	called := 0
	sys.TickHook = func(event.Time) { called++ }
	Attach(sys, 0, 50*event.Millisecond)
	eng.Run(50 * event.Millisecond)
	if called == 0 {
		t.Fatal("previous TickHook was not chained")
	}
}

func TestChromeTrace(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 50*event.Millisecond)
	task := sys.NewTask("chrome.task", 1)
	task.Pin(1)
	sys.Push(task, 1e12)
	eng.Run(50 * event.Millisecond)
	data, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, `"chrome.task"`) || !strings.Contains(out, `"ph":"X"`) {
		t.Fatalf("chrome trace missing slices: %s", out[:min(200, len(out))])
	}
	if !strings.Contains(out, `"tid":1`) {
		t.Fatal("core track missing")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMaxSamplesBoundsMemory(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 0)
	r.MaxSamples = 100
	eng.Run(event.Second) // 1000 ticks at 1 ms

	if len(r.Samples) > 100 {
		t.Fatalf("recorder holds %d samples, cap 100", len(r.Samples))
	}
	if r.Dropped == 0 {
		t.Fatal("no samples dropped over a 10x-cap run")
	}
	if len(r.Samples)+r.Dropped < 990 {
		t.Fatalf("kept %d + dropped %d should account for ~1000 ticks",
			len(r.Samples), r.Dropped)
	}
	// The newest samples are the ones retained.
	last := r.Samples[len(r.Samples)-1].At
	if last < 990*event.Millisecond {
		t.Fatalf("last kept sample at %v, want near 1 s", last)
	}
	for i := 1; i < len(r.Samples); i++ {
		if r.Samples[i].At <= r.Samples[i-1].At {
			t.Fatal("samples out of order after ring drops")
		}
	}
}

func TestUnboundedWhenNegative(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 0)
	r.MaxSamples = -1
	eng.Run(500 * event.Millisecond)
	if r.Dropped != 0 || len(r.Samples) < 499 {
		t.Fatalf("unbounded recorder dropped %d, kept %d", r.Dropped, len(r.Samples))
	}
}

func TestCapturesRunQueueDepth(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 50*event.Millisecond)
	for i := 0; i < 3; i++ {
		task := sys.NewTask("rq.task", 1)
		task.Pin(2)
		sys.Push(task, 1e12)
	}
	eng.Run(50 * event.Millisecond)

	deep := false
	for _, s := range r.Samples {
		if len(s.RunQueue) != len(sys.SoC.Cores) {
			t.Fatalf("RunQueue has %d entries", len(s.RunQueue))
		}
		if s.RunQueue[2] >= 3 {
			deep = true
		}
	}
	if !deep {
		t.Fatal("3 pinned tasks never observed on core 2's run queue")
	}
}

// chromeDoc mirrors the trace-event JSON for round-trip assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   *float64       `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  *int           `json:"pid"`
		TID  *int           `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTraceSchemaRoundTrip(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 100*event.Millisecond)
	tel := telemetry.NewCollector()
	sys.Tel = tel
	r.Tel = tel
	task := sys.NewTask("schema.task", 1)
	task.Pin(1)
	sys.Push(task, 1e12)
	eng.Run(100 * event.Millisecond)

	data, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	lastTs := map[[2]int]float64{}
	phs := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "" || ev.Ts == nil || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event missing schema fields: %+v", ev)
		}
		phs[ev.Ph]++
		if ev.Ph == "i" && ev.S == "" {
			t.Fatalf("instant event without scope: %+v", ev)
		}
		if ev.Ph == "C" && len(ev.Args) == 0 {
			t.Fatalf("counter event without args: %+v", ev)
		}
		// Timestamps must be monotonic within each (ph-class, track): slices
		// per core track, counters per counter track.
		if ev.Ph == "X" || ev.Ph == "C" {
			key := [2]int{*ev.TID, map[string]int{"X": 0, "C": 1}[ev.Ph]}
			if prev, ok := lastTs[key]; ok && *ev.Ts < prev {
				t.Fatalf("track tid=%d ph=%s goes backwards: %v after %v",
					*ev.TID, ev.Ph, *ev.Ts, prev)
			}
			lastTs[key] = *ev.Ts
		}
	}
	if phs["X"] == 0 {
		t.Fatal("no complete slices")
	}
	if phs["C"] == 0 {
		t.Fatal("no counter events (cluster MHz / runnable tasks)")
	}
}

func TestChromeTraceCounterTracks(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 100*event.Millisecond)
	task := sys.NewTask("ctr.task", 1)
	task.Pin(5)
	sys.Push(task, 1e12)
	eng.Run(100 * event.Millisecond)

	data, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{`"little MHz"`, `"big MHz"`, `"runnable tasks"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing counter track %s", want)
		}
	}
}

func TestChromeTraceTelemetryInstants(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 100*event.Millisecond)
	tel := telemetry.NewCollector()
	r.Tel = tel
	eng.Run(100 * event.Millisecond)

	// Synthesize telemetry inside and outside the recorded window; only the
	// in-window events may appear.
	tel.Emit(telemetry.Event{At: 50 * event.Millisecond, Kind: telemetry.KindMigration,
		Task: 1, TaskName: "mover", FromCore: 0, Core: 4, Cluster: -1,
		Reason: telemetry.ReasonUpThreshold})
	tel.Emit(telemetry.Event{At: 60 * event.Millisecond, Kind: telemetry.KindBoost,
		Task: 1, TaskName: "mover", FromCore: -1, Core: 4, Cluster: -1, Value: 900})
	tel.Emit(telemetry.Event{At: 70 * event.Millisecond, Kind: telemetry.KindPower,
		Task: -1, Core: -1, FromCore: -1, Cluster: -1, Value: 1234.5})
	tel.Emit(telemetry.Event{At: 5 * event.Second, Kind: telemetry.KindMigration,
		Task: 2, TaskName: "outside", FromCore: 1, Core: 5, Cluster: -1,
		Reason: telemetry.ReasonUpThreshold})

	data, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, `"migrate mover (up-threshold)"`) {
		t.Fatalf("migration instant missing:\n%s", out)
	}
	if !strings.Contains(out, `"boost mover"`) {
		t.Fatal("boost instant missing")
	}
	if !strings.Contains(out, `"power mW"`) {
		t.Fatal("power counter track missing")
	}
	if strings.Contains(out, "outside") {
		t.Fatal("event beyond the recorded window leaked into the trace")
	}
}

func TestChromeTraceXrayFlowEvents(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 100*event.Millisecond)
	x := xray.New()
	r.Xray = x
	eng.Run(100 * event.Millisecond)

	// Synthesize a wake -> migration -> freq chain inside the window, plus a
	// migration outside it; only in-window edges become flow pairs.
	x.Wake(10*event.Millisecond, 1, "mover", 0, 0, "woke on cpu0", "", nil, nil)
	x.Migration(40*event.Millisecond, 1, "mover", 0, 4, 1, "cpu0 -> cpu4", "up-threshold", nil, nil)
	x.FreqStep(60*event.Millisecond, 1, 1000, 1600, "cluster1 1000 -> 1600 MHz", "scale-up", nil, nil)
	x.Migration(5*event.Second, 1, "mover", 4, 0, 0, "outside-window", "down-threshold", nil, nil)

	data, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	starts, finishes := 0, 0
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Cat != "xray" {
			continue
		}
		names[ev.Name] = true
		switch ev.Ph {
		case "s":
			starts++
		case "f":
			finishes++
			if ev.BP != "e" {
				t.Errorf("flow finish without bp=e: %+v", ev)
			}
		}
		if ev.ID == 0 {
			t.Errorf("flow event without binding id: %+v", ev)
		}
		if strings.Contains(ev.Name, "outside") {
			t.Errorf("out-of-window span leaked: %+v", ev)
		}
	}
	// Two in-window edges: wake->migration and migration->freq.
	if starts != 2 || finishes != 2 {
		t.Fatalf("flow pairs = %d starts / %d finishes, want 2/2:\n%s", starts, finishes, data)
	}
	if !names["xray wake->migration"] || !names["xray migration->freq"] {
		t.Fatalf("flow edge names missing, got %v", names)
	}
}
