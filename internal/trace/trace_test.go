package trace

import (
	"strings"
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
)

func rig() (*event.Engine, *sched.System) {
	eng := event.New()
	sys := sched.New(eng, platform.Exynos5422(), sched.DefaultConfig())
	sys.Start()
	return eng, sys
}

func TestCapturesRunningTasks(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 100*event.Millisecond)
	task := sys.NewTask("worker", 1)
	task.Pin(2)
	sys.Push(task, 1e12)
	eng.Run(100 * event.Millisecond)

	if len(r.Samples) == 0 {
		t.Fatal("no samples")
	}
	seen := false
	for _, s := range r.Samples {
		if s.TaskOnCore[2] == task.ID {
			seen = true
		}
		for c, id := range s.TaskOnCore {
			if c != 2 && id != -1 {
				t.Fatalf("unexpected occupant %d on core %d", id, c)
			}
		}
		if len(s.ClusterMHz) != 2 {
			t.Fatalf("cluster freqs %v", s.ClusterMHz)
		}
	}
	if !seen {
		t.Fatal("pinned worker never observed on its core")
	}
}

func TestWindowRespected(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 50*event.Millisecond, 60*event.Millisecond)
	eng.Run(200 * event.Millisecond)
	if len(r.Samples) == 0 || len(r.Samples) > 11 {
		t.Fatalf("%d samples for a 10ms window at 1ms ticks", len(r.Samples))
	}
	for _, s := range r.Samples {
		if s.At < 50*event.Millisecond || s.At >= 60*event.Millisecond {
			t.Fatalf("sample at %v outside window", s.At)
		}
	}
}

func TestRenderContainsTimelineAndLegend(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 50*event.Millisecond)
	task := sys.NewTask("render.thread", 1)
	task.Pin(0)
	var gen func(now event.Time)
	gen = func(now event.Time) {
		sys.Push(task, 3e6)
		eng.At(now+10*event.Millisecond, gen)
	}
	gen(0)
	eng.Run(50 * event.Millisecond)

	out := r.Render(80)
	if !strings.Contains(out, "cpu0") || !strings.Contains(out, "cpu7") {
		t.Fatalf("missing core rows:\n%s", out)
	}
	if !strings.Contains(out, "a=render.thread") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "little cluster MHz") || !strings.Contains(out, "big    cluster MHz") {
		t.Fatalf("missing frequency summary:\n%s", out)
	}
	// cpu0's row must contain the task glyph.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cpu0") && !strings.Contains(line, "a") {
			t.Fatalf("cpu0 row has no activity: %q", line)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	_, sys := rig()
	r := Attach(sys, 0, 0)
	if out := r.Render(0); !strings.Contains(out, "no samples") {
		t.Fatalf("empty render: %q", out)
	}
}

func TestRenderDownsamples(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, event.Second)
	eng.Run(event.Second)
	out := r.Render(100)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cpu0") {
			inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			if len(inner) > 110 {
				t.Fatalf("row not downsampled: %d columns", len(inner))
			}
		}
	}
}

func TestResidency(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 200*event.Millisecond)
	little := sys.NewTask("on.little", 1)
	little.Pin(1)
	big := sys.NewTask("on.big", 1)
	big.Pin(5)
	sys.Push(little, 1e12)
	sys.Push(big, 1e12)
	eng.Run(200 * event.Millisecond)

	res := r.Residency()
	if res["on.little"][platform.Little] < 0.99 {
		t.Fatalf("little residency %v", res["on.little"])
	}
	if res["on.big"][platform.Big] < 0.99 {
		t.Fatalf("big residency %v", res["on.big"])
	}
}

func TestChainsExistingHook(t *testing.T) {
	eng, sys := rig()
	called := 0
	sys.TickHook = func(event.Time) { called++ }
	Attach(sys, 0, 50*event.Millisecond)
	eng.Run(50 * event.Millisecond)
	if called == 0 {
		t.Fatal("previous TickHook was not chained")
	}
}

func TestChromeTrace(t *testing.T) {
	eng, sys := rig()
	r := Attach(sys, 0, 50*event.Millisecond)
	task := sys.NewTask("chrome.task", 1)
	task.Pin(1)
	sys.Push(task, 1e12)
	eng.Run(50 * event.Millisecond)
	data, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, `"chrome.task"`) || !strings.Contains(out, `"ph":"X"`) {
		t.Fatalf("chrome trace missing slices: %s", out[:min(200, len(out))])
	}
	if !strings.Contains(out, `"tid":1`) {
		t.Fatal("core track missing")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
