// Package trace records a per-core execution timeline from a running
// simulation — who ran where at every scheduler tick, and each cluster's
// frequency — and renders it as a systrace-style ASCII chart. It is the
// observability companion to the characterization metrics: Tables III-V
// aggregate; the trace shows the individual migrations, bursts, and
// frequency ramps that produce them.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
	"biglittle/internal/telemetry"
	"biglittle/internal/xray"
)

// Sample is one scheduler tick's snapshot.
type Sample struct {
	At event.Time
	// TaskOnCore[i] is the ID of the task running on core i, or -1.
	TaskOnCore []int
	// ClusterMHz[i] is cluster i's frequency.
	ClusterMHz []int
	// RunQueue[i] is the run-queue depth of core i (running + waiting).
	RunQueue []int
	// Runnable lists the IDs of tasks that were on a run queue but not
	// executing at this tick — the sampled view of schedstat run_delay.
	Runnable []int
}

// DefaultMaxSamples bounds recorder memory when `to` is zero (record until
// the run ends): roughly two minutes of 1 ms ticks, ~25 MB on an 8-core
// platform. Once full, the oldest quarter is discarded in one copy, so the
// recorder always holds approximately the most recent MaxSamples ticks at
// amortized O(1) cost per tick.
const DefaultMaxSamples = 120_000

// Recorder captures one Sample per scheduler tick via the system's
// TickHook (chaining any hook already installed).
type Recorder struct {
	sys     *sched.System
	from    event.Time
	to      event.Time
	Samples []Sample
	// MaxSamples caps the in-memory sample window (DefaultMaxSamples when
	// zero, negative = unbounded). When the cap is reached the oldest
	// quarter of the window is dropped, keeping the most recent samples.
	MaxSamples int
	// Dropped counts samples discarded because of MaxSamples.
	Dropped int
	// Tel, when non-nil, lets ChromeTrace add instant events (migrations,
	// boosts) and a power counter track from the telemetry event log.
	Tel *telemetry.Collector
	// Xray, when non-nil, lets ChromeTrace draw the causal decision chains as
	// flow arrows: each retained span with a retained parent becomes an
	// s/f flow pair (wake → migration → frequency step → throttle), rendered
	// by Perfetto as arrows between the involved core and cluster tracks.
	Xray *xray.Tracer
	// names caches task names by ID for rendering.
	names map[int]string
}

// Attach installs a recorder on sys capturing ticks in [from, to). A zero
// `to` records until the run ends; memory is bounded by MaxSamples
// (DefaultMaxSamples unless overridden), keeping the most recent window.
func Attach(sys *sched.System, from, to event.Time) *Recorder {
	r := &Recorder{sys: sys, from: from, to: to, names: map[int]string{}}
	prev := sys.TickHook
	sys.TickHook = func(now event.Time) {
		if prev != nil {
			prev(now)
		}
		r.capture(now)
	}
	return r
}

func (r *Recorder) capture(now event.Time) {
	if now < r.from || (r.to > 0 && now >= r.to) {
		return
	}
	if max := r.MaxSamples; max >= 0 {
		if max == 0 {
			max = DefaultMaxSamples
		}
		if len(r.Samples) >= max {
			drop := max / 4
			if drop < 1 {
				drop = 1
			}
			r.Samples = append(r.Samples[:0], r.Samples[drop:]...)
			r.Dropped += drop
		}
	}
	soc := r.sys.SoC
	s := Sample{
		At:         now,
		TaskOnCore: make([]int, len(soc.Cores)),
		ClusterMHz: make([]int, len(soc.Clusters)),
		RunQueue:   make([]int, len(soc.Cores)),
	}
	for i := range s.TaskOnCore {
		s.TaskOnCore[i] = -1
		s.RunQueue[i] = r.sys.QueueLen(i)
	}
	for _, t := range r.sys.Tasks() {
		switch t.CurState() {
		case sched.Running:
			s.TaskOnCore[t.CPU()] = t.ID
			r.names[t.ID] = t.Name
		case sched.Runnable:
			s.Runnable = append(s.Runnable, t.ID)
			r.names[t.ID] = t.Name
		}
	}
	for i := range soc.Clusters {
		s.ClusterMHz[i] = soc.Clusters[i].CurMHz
	}
	r.Samples = append(r.Samples, s)
}

// glyphs assigns a stable single-character glyph per task ID, in first-seen
// order: a-z, then A-Z, then '#'.
func (r *Recorder) glyphs() map[int]byte {
	var ids []int
	for id := range r.names {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := map[int]byte{}
	const alpha = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	for i, id := range ids {
		if i < len(alpha) {
			out[id] = alpha[i]
		} else {
			out[id] = '#'
		}
	}
	return out
}

// Render draws the recorded window as one row per core ('.' = idle, one
// glyph per task) plus a legend and per-cluster frequency summary lines.
// Columns are individual ticks; long windows are downsampled to fit width
// columns (0 = no limit).
func (r *Recorder) Render(width int) string {
	if len(r.Samples) == 0 {
		return "trace: no samples recorded\n"
	}
	stride := 1
	if width > 0 && len(r.Samples) > width {
		stride = (len(r.Samples) + width - 1) / width
	}
	glyphs := r.glyphs()
	soc := r.sys.SoC

	var b strings.Builder
	fmt.Fprintf(&b, "trace: %v .. %v, %d ticks, 1 column = %d tick(s)\n",
		r.Samples[0].At, r.Samples[len(r.Samples)-1].At, len(r.Samples), stride)

	for core := range soc.Cores {
		fmt.Fprintf(&b, "cpu%d %-6s |", core, soc.Cores[core].Type)
		for i := 0; i < len(r.Samples); i += stride {
			// Within a stride, show the most common non-idle occupant.
			counts := map[int]int{}
			for j := i; j < i+stride && j < len(r.Samples); j++ {
				counts[r.Samples[j].TaskOnCore[core]]++
			}
			best, bestN := -1, 0
			for id, n := range counts {
				if id >= 0 && n > bestN {
					best, bestN = id, n
				}
			}
			if best == -1 {
				b.WriteByte('.')
			} else {
				b.WriteByte(glyphs[best])
			}
		}
		b.WriteString("|\n")
	}

	// Frequency bands per cluster: min/avg/max over the window.
	for ci := range soc.Clusters {
		min, max, sum := 1<<30, 0, 0
		for _, s := range r.Samples {
			f := s.ClusterMHz[ci]
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
			sum += f
		}
		fmt.Fprintf(&b, "%-6s cluster MHz: min %d avg %d max %d\n",
			soc.Clusters[ci].Type, min, sum/len(r.Samples), max)
	}

	// Legend, sorted by glyph.
	type entry struct {
		g    byte
		name string
	}
	var legend []entry
	for id, g := range glyphs {
		legend = append(legend, entry{g, r.names[id]})
	}
	sort.Slice(legend, func(i, j int) bool { return legend[i].g < legend[j].g })
	b.WriteString("legend:")
	for _, e := range legend {
		fmt.Fprintf(&b, " %c=%s", e.g, e.name)
	}
	b.WriteString("\n")
	return b.String()
}

// TaskResidency summarizes one task's observed scheduling over the window:
// where it ran, and how often it was runnable but waiting behind another
// task (the sampled analogue of schedstat's run_delay).
type TaskResidency struct {
	// Run is the fraction of the task's observed running time per core type.
	Run map[platform.CoreType]float64
	// RunTicks counts ticks where the task was executing.
	RunTicks int
	// WaitTicks counts ticks where the task sat on a run queue without
	// executing.
	WaitTicks int
}

// WaitShare returns the fraction of the task's on-queue time spent waiting
// rather than running (0 when never observed on a queue).
func (t TaskResidency) WaitShare() float64 {
	if t.RunTicks+t.WaitTicks == 0 {
		return 0
	}
	return float64(t.WaitTicks) / float64(t.RunTicks+t.WaitTicks)
}

// Residency summarizes per-task core-type residency and runnable-wait over
// the window.
func (r *Recorder) Residency() map[string]TaskResidency {
	counts := map[int]map[platform.CoreType]int{}
	runs := map[int]int{}
	waits := map[int]int{}
	for _, s := range r.Samples {
		for core, id := range s.TaskOnCore {
			if id < 0 {
				continue
			}
			if counts[id] == nil {
				counts[id] = map[platform.CoreType]int{}
			}
			counts[id][r.sys.SoC.Cores[core].Type]++
			runs[id]++
		}
		for _, id := range s.Runnable {
			waits[id]++
		}
	}
	out := map[string]TaskResidency{}
	for id := range r.names {
		tr := TaskResidency{RunTicks: runs[id], WaitTicks: waits[id]}
		if runs[id] > 0 {
			tr.Run = map[platform.CoreType]float64{}
			for typ, n := range counts[id] {
				tr.Run[typ] = float64(n) / float64(runs[id])
			}
		}
		out[r.names[id]] = tr
	}
	return out
}

// chromeEvent is one Chrome trace-event ("X" complete slices, "i" instants,
// "C" counters), so recorded timelines open directly in chrome://tracing or
// Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"` // category, flow events only
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds, "X" only
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`   // flow binding, "s"/"f" only
	BP   string         `json:"bp,omitempty"`   // flow binding point, "f" only
	S    string         `json:"s,omitempty"`    // instant scope, "i" only
	Args map[string]any `json:"args,omitempty"` // counter values, instant detail
}

// ChromeTrace renders the recorded window as Chrome trace-event JSON: one
// track per core (tid = core id), one slice per contiguous run of a task,
// plus counter tracks for per-cluster MHz and total runnable tasks. When Tel
// is set, it also carries a power (mW) counter track and instant events for
// every migration and boost in the recorded window.
func (r *Recorder) ChromeTrace() ([]byte, error) {
	var events []chromeEvent
	if len(r.Samples) > 0 {
		nCores := len(r.Samples[0].TaskOnCore)
		for core := 0; core < nCores; core++ {
			runStart := -1
			runTask := -1
			flush := func(endIdx int) {
				if runTask < 0 || runStart < 0 {
					return
				}
				start := r.Samples[runStart].At
				end := r.Samples[endIdx-1].At + event.Millisecond
				events = append(events, chromeEvent{
					Name: r.names[runTask],
					Ph:   "X",
					Ts:   float64(start) / 1000,
					Dur:  float64(end-start) / 1000,
					PID:  1,
					TID:  core,
				})
			}
			for i, s := range r.Samples {
				t := s.TaskOnCore[core]
				if t != runTask {
					flush(i)
					runStart, runTask = i, t
				}
			}
			flush(len(r.Samples))
		}

		// Counter tracks, emitted on change only: per-cluster frequency and
		// total runnable tasks across all cores.
		soc := r.sys.SoC
		lastMHz := make([]int, len(soc.Clusters))
		for i := range lastMHz {
			lastMHz[i] = -1
		}
		lastRunnable := -1
		for _, s := range r.Samples {
			for ci, f := range s.ClusterMHz {
				if f != lastMHz[ci] {
					lastMHz[ci] = f
					events = append(events, chromeEvent{
						Name: fmt.Sprintf("%s MHz", soc.Clusters[ci].Type),
						Ph:   "C",
						Ts:   float64(s.At) / 1000,
						PID:  1,
						TID:  nCores + ci,
						Args: map[string]any{"MHz": f},
					})
				}
			}
			runnable := 0
			for _, q := range s.RunQueue {
				runnable += q
			}
			if runnable != lastRunnable {
				lastRunnable = runnable
				events = append(events, chromeEvent{
					Name: "runnable tasks",
					Ph:   "C",
					Ts:   float64(s.At) / 1000,
					PID:  1,
					TID:  nCores + len(soc.Clusters),
					Args: map[string]any{"tasks": runnable},
				})
			}
		}

		// Causal-chain flow arrows from the xray tracer: one s/f pair per
		// parent→child decision edge inside the recorded window. Spans land
		// on their core's track when they have one (wake, migration,
		// hotplug), else on their cluster's counter track.
		if r.Xray != nil {
			lo := r.Samples[0].At
			hi := r.Samples[len(r.Samples)-1].At + event.Millisecond
			dump := r.Xray.Dump()
			tidOf := func(s xray.Span) int {
				if s.Core >= 0 {
					return s.Core
				}
				return nCores + s.Cluster
			}
			for _, s := range dump.Spans {
				if s.Parent < 0 || s.At < lo || s.At >= hi {
					continue
				}
				p, ok := dump.Get(s.Parent)
				if !ok || p.At < lo || p.At >= hi {
					continue
				}
				name := fmt.Sprintf("xray %s->%s", p.Kind, s.Kind)
				events = append(events,
					chromeEvent{
						Name: name, Cat: "xray", Ph: "s", ID: s.ID,
						Ts: float64(p.At) / 1000, PID: 1, TID: tidOf(p),
					},
					chromeEvent{
						Name: name, Cat: "xray", Ph: "f", ID: s.ID, BP: "e",
						Ts: float64(s.At) / 1000, PID: 1, TID: tidOf(s),
						Args: map[string]any{"choice": s.Choice, "reason": s.Reason},
					})
			}
		}

		// Telemetry enrichment: instant events on the core tracks plus a
		// power counter track, limited to the recorded window.
		if r.Tel != nil {
			lo := r.Samples[0].At
			hi := r.Samples[len(r.Samples)-1].At + event.Millisecond
			for _, ev := range r.Tel.Events() {
				if ev.At < lo || ev.At >= hi {
					continue
				}
				switch ev.Kind {
				case telemetry.KindMigration:
					events = append(events, chromeEvent{
						Name: fmt.Sprintf("migrate %s (%s)", ev.TaskName, ev.Reason),
						Ph:   "i",
						Ts:   float64(ev.At) / 1000,
						PID:  1,
						TID:  ev.Core,
						S:    "t",
						Args: map[string]any{"from": ev.FromCore, "to": ev.Core, "reason": ev.Reason},
					})
				case telemetry.KindBoost:
					events = append(events, chromeEvent{
						Name: fmt.Sprintf("boost %s", ev.TaskName),
						Ph:   "i",
						Ts:   float64(ev.At) / 1000,
						PID:  1,
						TID:  ev.Core,
						S:    "t",
						Args: map[string]any{"load": ev.Value},
					})
				case telemetry.KindPower:
					events = append(events, chromeEvent{
						Name: "power mW",
						Ph:   "C",
						Ts:   float64(ev.At) / 1000,
						PID:  1,
						TID:  nCores + len(soc.Clusters) + 1,
						Args: map[string]any{"mW": ev.Value},
					})
				}
			}
		}
	}
	return json.Marshal(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
