package fleet

import (
	"context"
	"sync"
	"testing"
	"time"

	"biglittle/internal/core"
	"biglittle/internal/lab"
)

// fakeClock drives the coordinator's idea of time so lease expiry is
// deterministic regardless of test-host scheduling.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestCoordinator(t *testing.T, opt Options) *Coordinator {
	t.Helper()
	c := NewCoordinator(opt)
	t.Cleanup(c.Close)
	return c
}

func testSpec(t *testing.T, seed int64) JobSpec {
	t.Helper()
	spec, err := SpecFromJob(testJob(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSubmitLeaseComplete(t *testing.T) {
	c := newTestCoordinator(t, Options{})
	spec := testSpec(t, 1)

	rep, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.State != StatePending || rep.ID != spec.Fingerprint {
		t.Fatalf("submit reply = %+v", rep)
	}

	g, err := c.Lease(context.Background(), "w1", 0)
	if err != nil || g == nil {
		t.Fatalf("lease = %v, %v", g, err)
	}
	if g.Job != rep.ID || g.Spec.Fingerprint != spec.Fingerprint {
		t.Fatalf("leased wrong job: %+v", g)
	}

	res := core.Result{EnergyMJ: 42}
	if err := c.Complete(g.Lease, g.Job, "w1", res); err != nil {
		t.Fatal(err)
	}
	st, err := c.Job(context.Background(), rep.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil || st.Result.EnergyMJ != 42 {
		t.Fatalf("status after complete = %+v", st)
	}
	if st.Attempts != 1 || st.Worker != "w1" {
		t.Fatalf("attempts/worker = %d/%q, want 1/w1", st.Attempts, st.Worker)
	}
}

func TestSubmitDedupes(t *testing.T) {
	c := newTestCoordinator(t, Options{})
	spec := testSpec(t, 1)
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deduped {
		t.Fatalf("identical resubmission not deduped: %+v", rep)
	}
	if s := c.Stats(); s.Pending != 1 {
		t.Fatalf("dedup still enqueued a second copy: %+v", s)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	c := newTestCoordinator(t, Options{MaxQueue: 1})
	if _, err := c.Submit(testSpec(t, 1)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(testSpec(t, 2)) // distinct seed: not a dedup
	if err != ErrQueueFull {
		t.Fatalf("second submit = %v, want ErrQueueFull", err)
	}
	if s := c.Stats(); s.Backpressure != 1 {
		t.Fatalf("backpressure counter = %d, want 1", s.Backpressure)
	}

	// Leasing the queued job frees the slot: the refused job submits cleanly.
	if g, err := c.Lease(context.Background(), "w1", 0); err != nil || g == nil {
		t.Fatalf("lease = %v, %v", g, err)
	}
	if _, err := c.Submit(testSpec(t, 2)); err != nil {
		t.Fatalf("submit after lease freed the queue: %v", err)
	}
}

func TestLeaseExpiryReassignsJob(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, Options{LeaseTTL: 30 * time.Second, Now: clock.now})
	spec := testSpec(t, 1)
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}

	// Worker a takes the job and dies (never completes, never renews).
	ga, err := c.Lease(context.Background(), "a", 0)
	if err != nil || ga == nil {
		t.Fatalf("lease a = %v, %v", ga, err)
	}
	clock.advance(31 * time.Second)
	if n := c.ExpireLeases(); n != 1 {
		t.Fatalf("ExpireLeases = %d, want 1", n)
	}

	// The job is pending again; worker b picks it up as attempt 2.
	gb, err := c.Lease(context.Background(), "b", 0)
	if err != nil || gb == nil {
		t.Fatalf("lease b = %v, %v", gb, err)
	}
	if gb.Job != ga.Job {
		t.Fatalf("b leased %s, want the expired job %s", gb.Job, ga.Job)
	}
	if err := c.Complete(gb.Lease, gb.Job, "b", core.Result{EnergyMJ: 7}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Job(context.Background(), gb.Job, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Attempts != 2 || st.Worker != "b" {
		t.Fatalf("status = %+v, want done on attempt 2 by b", st)
	}

	// The dead worker's result arrives late: discarded, not double-counted.
	if err := c.Complete(ga.Lease, ga.Job, "a", core.Result{EnergyMJ: 7}); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Completed != 1 {
		t.Fatalf("completed = %d after duplicate result, want 1", s.Completed)
	}
	if got := c.Tel().Counter("fleet_duplicate_results").Value(); got != 1 {
		t.Fatalf("duplicate_results = %d, want 1", got)
	}
	if s.LeaseExpiries != 1 || s.Retries != 1 {
		t.Fatalf("expiries/retries = %d/%d, want 1/1", s.LeaseExpiries, s.Retries)
	}
}

func TestLateCompletionBeatsRequeue(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, Options{LeaseTTL: 30 * time.Second, Now: clock.now})
	if _, err := c.Submit(testSpec(t, 1)); err != nil {
		t.Fatal(err)
	}
	g, err := c.Lease(context.Background(), "slow", 0)
	if err != nil || g == nil {
		t.Fatalf("lease = %v, %v", g, err)
	}
	clock.advance(31 * time.Second)
	c.ExpireLeases() // job requeued as pending

	// The slow worker finishes anyway. Its result is accepted...
	if err := c.Complete(g.Lease, g.Job, "slow", core.Result{EnergyMJ: 3}); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Job(context.Background(), g.Job, 0)
	if st.State != StateDone {
		t.Fatalf("late completion not accepted: %+v", st)
	}
	// ...and the requeued copy is skipped at grant time, not re-executed.
	if g2, err := c.Lease(context.Background(), "other", 0); err != nil || g2 != nil {
		t.Fatalf("requeued copy of a done job was granted: %+v, %v", g2, err)
	}
	if s := c.Stats(); s.QueueDepth != 0 {
		t.Fatalf("queue depth = %d, want 0", s.QueueDepth)
	}
}

func TestAttemptsExhaustedFailsJob(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, Options{LeaseTTL: time.Second, MaxAttempts: 2, Now: clock.now})
	if _, err := c.Submit(testSpec(t, 1)); err != nil {
		t.Fatal(err)
	}
	var id string
	for i := 0; i < 2; i++ {
		g, err := c.Lease(context.Background(), "flaky", 0)
		if err != nil || g == nil {
			t.Fatalf("lease %d = %v, %v", i, g, err)
		}
		id = g.Job
		clock.advance(2 * time.Second)
		c.ExpireLeases()
	}
	st, err := c.Job(context.Background(), id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("after exhausting attempts: %+v, want failed with an error", st)
	}
	if s := c.Stats(); s.FailedJobs != 1 {
		t.Fatalf("failed counter = %d, want 1", s.FailedJobs)
	}
}

func TestWorkerFailRequeues(t *testing.T) {
	c := newTestCoordinator(t, Options{})
	if _, err := c.Submit(testSpec(t, 1)); err != nil {
		t.Fatal(err)
	}
	g, err := c.Lease(context.Background(), "w1", 0)
	if err != nil || g == nil {
		t.Fatalf("lease = %v, %v", g, err)
	}
	if err := c.Fail(g.Lease, g.Job, "w1", "spec rejected"); err != nil {
		t.Fatal(err)
	}
	g2, err := c.Lease(context.Background(), "w2", 0)
	if err != nil || g2 == nil || g2.Job != g.Job {
		t.Fatalf("failed job not requeued: %+v, %v", g2, err)
	}
}

func TestRenewExtendsLease(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, Options{LeaseTTL: 30 * time.Second, Now: clock.now})
	if _, err := c.Submit(testSpec(t, 1)); err != nil {
		t.Fatal(err)
	}
	g, _ := c.Lease(context.Background(), "w1", 0)
	clock.advance(20 * time.Second)
	if err := c.Renew(g.Lease, "w1"); err != nil {
		t.Fatal(err)
	}
	clock.advance(20 * time.Second) // 40s total: only fatal without the renewal
	if n := c.ExpireLeases(); n != 0 {
		t.Fatalf("renewed lease expired anyway (%d)", n)
	}
	clock.advance(11 * time.Second)
	if n := c.ExpireLeases(); n != 1 {
		t.Fatalf("lease did not expire after renewal lapsed (%d)", n)
	}
	if err := c.Renew(g.Lease, "w1"); err != ErrGone {
		t.Fatalf("renewing an expired lease = %v, want ErrGone", err)
	}
}

func TestDrainStopsLeasingAndWaits(t *testing.T) {
	c := newTestCoordinator(t, Options{})
	if _, err := c.Submit(testSpec(t, 1)); err != nil {
		t.Fatal(err)
	}
	g, err := c.Lease(context.Background(), "w1", 0)
	if err != nil || g == nil {
		t.Fatalf("lease = %v, %v", g, err)
	}

	drained := make(chan error, 1)
	go func() { drained <- c.Drain(context.Background()) }()

	// Draining flips readiness and refuses new work.
	deadline := time.Now().Add(5 * time.Second)
	for !c.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !c.Draining() {
		t.Fatal("Drain never set draining")
	}
	if _, err := c.Submit(testSpec(t, 2)); err != ErrDraining {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
	if _, err := c.Lease(context.Background(), "w2", 0); err != ErrDraining {
		t.Fatalf("lease while draining = %v, want ErrDraining", err)
	}

	// The in-flight job finishing releases the drain.
	if err := c.Complete(g.Lease, g.Job, "w1", core.Result{}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not return after the held job completed")
	}
}

func TestCoordinatorCacheShortCircuits(t *testing.T) {
	cache, err := lab.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCoordinator(t, Options{Cache: cache})
	spec := testSpec(t, 1)

	// First pass: normal queue round.
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	g, _ := c.Lease(context.Background(), "w1", 0)
	if err := c.Complete(g.Lease, g.Job, "w1", core.Result{EnergyMJ: 9}); err != nil {
		t.Fatal(err)
	}

	// Second coordinator sharing the cache: the same spec completes on
	// submit, no worker involved.
	c2 := newTestCoordinator(t, Options{Cache: cache})
	rep, err := c2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.State != StateDone || !rep.Cached {
		t.Fatalf("submit reply = %+v, want done from cache", rep)
	}
	st, err := c2.Job(context.Background(), rep.ID, 0)
	if err != nil || st.Result == nil || st.Result.EnergyMJ != 9 {
		t.Fatalf("cached status = %+v, %v", st, err)
	}
}
