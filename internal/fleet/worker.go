package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync/atomic"
	"time"

	"biglittle/internal/lab"
)

// Worker is one stateless fleet executor: it pulls leased job specs from
// the coordinator, reconstructs and verifies each config, executes it
// through its own lab.Runner (so the worker's content-addressed cache and
// audit mode apply), and publishes the result back.
//
// Graceful shutdown: cancel the context passed to Run. The worker stops
// leasing immediately but finishes and publishes the job it holds — a
// drained worker never strands a lease for the TTL.
type Worker struct {
	// Client reaches the coordinator (required).
	Client *Client
	// Runner executes jobs locally (required). Give it a cache for warm
	// restarts; Workers>1 is pointless here — each fleet worker runs one
	// job at a time, parallelism comes from running more workers.
	Runner *lab.Runner
	// ID names this worker in leases and stats (default "host:pid").
	ID string
	// LeaseWait is the long-poll window per lease request (default 5s).
	LeaseWait time.Duration
	// Backoff is the pause after an unreachable or draining coordinator
	// (default 1s).
	Backoff time.Duration
	// Log, when non-nil, narrates the lease/execute/publish loop.
	Log *slog.Logger

	executed atomic.Int64
	failed   atomic.Int64
}

func (w *Worker) id() string {
	if w.ID != "" {
		return w.ID
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	w.ID = fmt.Sprintf("%s:%d", host, os.Getpid())
	return w.ID
}

func (w *Worker) leaseWait() time.Duration {
	if w.LeaseWait > 0 {
		return w.LeaseWait
	}
	return 5 * time.Second
}

func (w *Worker) backoff() time.Duration {
	if w.Backoff > 0 {
		return w.Backoff
	}
	return time.Second
}

// Executed returns how many jobs this worker published successfully;
// Failed how many it reported as failed.
func (w *Worker) Executed() int64 { return w.executed.Load() }
func (w *Worker) Failed() int64   { return w.failed.Load() }

func (w *Worker) logf(msg string, args ...any) {
	if w.Log != nil {
		w.Log.Info(msg, append([]any{"worker", w.id()}, args...)...)
	}
}

// Run is the worker loop: lease, execute, publish, repeat, until ctx is
// cancelled. It returns nil on graceful shutdown — transient coordinator
// outages are retried with backoff, never fatal.
func (w *Worker) Run(ctx context.Context) error {
	w.logf("worker starting", "coordinator", w.Client.Base)
	for ctx.Err() == nil {
		g, err := w.Client.Lease(ctx, w.id(), w.leaseWait())
		switch {
		case ctx.Err() != nil:
			// Cancelled mid-poll; no lease was granted.
		case errors.Is(err, ErrDraining):
			w.logf("coordinator draining; standing by")
			w.sleep(ctx, w.backoff())
		case err != nil:
			w.logf("lease error; backing off", "err", err)
			w.sleep(ctx, w.backoff())
		case g == nil:
			// Long-poll elapsed with no work; ask again.
		default:
			w.execute(ctx, g)
		}
	}
	w.logf("worker stopped", "executed", w.Executed(), "failed", w.Failed())
	return nil
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// execute runs one leased job and publishes the outcome. The publish uses a
// fresh context so a shutdown mid-simulation still delivers the result —
// that is the whole point of graceful drain.
func (w *Worker) execute(ctx context.Context, g *LeaseGrant) {
	job, err := g.Spec.Verify()
	if err != nil {
		w.failed.Add(1)
		w.logf("spec rejected", "job", short(g.Job), "err", err)
		w.publish(func(pctx context.Context) error {
			return w.Client.Fail(pctx, g, w.id(), err.Error())
		})
		return
	}

	// Heartbeat: renew the lease at TTL/3 while the simulation runs, so
	// long jobs are not reassigned under us. A Gone renewal means the
	// coordinator already gave the job away; we finish anyway and rely on
	// Complete's idempotency.
	stopRenew := make(chan struct{})
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		interval := g.TTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopRenew:
				return
			case <-t.C:
				if err := w.Client.Renew(context.Background(), g.Lease, w.id()); errors.Is(err, ErrGone) {
					w.logf("lease reassigned mid-job; finishing anyway", "job", short(g.Job))
					return
				}
			}
		}
	}()

	res, runErr := w.Runner.Run(job)
	close(stopRenew)
	<-renewDone

	if runErr != nil {
		w.failed.Add(1)
		w.logf("job failed", "job", short(g.Job), "app", g.Spec.App, "err", runErr)
		w.publish(func(pctx context.Context) error {
			return w.Client.Fail(pctx, g, w.id(), runErr.Error())
		})
		return
	}
	ok := w.publish(func(pctx context.Context) error {
		return w.Client.Complete(pctx, g, w.id(), res)
	})
	if ok {
		w.executed.Add(1)
		w.logf("job published", "job", short(g.Job), "app", g.Spec.App)
	}
}

// publish delivers a completion or failure with bounded retries on a
// context independent of the worker's (shutdown must not drop results).
func (w *Worker) publish(send func(context.Context) error) bool {
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		pctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = send(pctx)
		cancel()
		if err == nil {
			return true
		}
		time.Sleep(time.Duration(attempt+1) * 200 * time.Millisecond)
	}
	w.logf("publish failed; result dropped (coordinator will requeue on lease expiry)", "err", err)
	return false
}
