// Package fleet lifts the in-process experiment orchestrator (internal/lab)
// into simulation-as-a-service: a Coordinator exposes an HTTP JSON job API,
// stateless Workers pull fingerprinted job specs on bounded leases, execute
// them through their own lab.Runner (content-addressed cache included), and
// publish results back; a Client plugs into lab.Runner.Remote so RunAll
// transparently fans a sweep out across N processes or machines.
//
// Three properties carry over from lab unchanged:
//
//   - Determinism: a job spec is the serialized form of exactly the state
//     lab.Fingerprint hashes, and both sides verify that the reconstructed
//     config re-hashes to the submitted fingerprint — so a result computed
//     on any worker is byte-identical to an in-process run, and RunAll's
//     submission-order result slots keep reports byte-identical too.
//   - Robustness: leases expire; a worker that dies mid-job loses its lease
//     and the job is requeued for another worker (bounded attempts). A
//     completion arriving after expiry is accepted idempotently — results
//     are deterministic, so the first completion wins and duplicates are
//     discarded.
//   - Backpressure: the coordinator's pending queue is bounded; submissions
//     beyond the bound are refused with 429 + Retry-After, which the client
//     honors, so a storm of submissions degrades to queuing delay, not to
//     coordinator memory growth.
package fleet

import (
	"fmt"

	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/governor"
	"biglittle/internal/lab"
	"biglittle/internal/platform"
	"biglittle/internal/power"
	"biglittle/internal/sched"
	"biglittle/internal/thermal"
)

// JobSpec is the wire form of one simulation job: every field
// lab.Fingerprint hashes, with the app and platform reduced to names the
// worker resolves from its own registries. Fingerprint is the content hash
// the submitter computed; both coordinator and worker re-derive it from the
// reconstructed config and refuse the spec on mismatch, so a version skew
// between fleet members surfaces as a loud error, not a wrong number.
type JobSpec struct {
	Fingerprint string `json:"fingerprint"`

	App       string                     `json:"app"`
	Seed      int64                      `json:"seed"`
	Duration  event.Time                 `json:"duration"`
	Cores     platform.CoreConfig        `json:"cores"`
	Sched     sched.Config               `json:"sched"`
	Scheduler core.SchedulerKind         `json:"scheduler"`
	Governor  core.GovernorKind          `json:"governor"`
	Gov       governor.InteractiveConfig `json:"gov"`
	PinnedMHz map[int]int                `json:"pinned_mhz,omitempty"`
	Power     power.Params               `json:"power"`
	Platform  string                     `json:"platform,omitempty"`
	Thermal   *thermal.Params            `json:"thermal,omitempty"`
}

// platforms maps the SoC names a spec may carry to their constructors —
// the worker-side inverse of Config.Platform. Every named SoC the simulator
// ships is here; a config using an unlisted platform is simply not remotable
// and runs locally.
var platforms = map[string]func() *platform.SoC{
	"exynos5422":      platform.Exynos5422,
	"exynos5422-tiny": platform.Exynos5422Tiny,
	"snapdragon810":   platform.Snapdragon810,
}

// SpecFromJob serializes a lab.Job into its wire form, or explains why it
// cannot travel: jobs with live observers or hooks (unfingerprintable),
// Prepare functions, salts (which mark configs whose identity is not fully
// captured by the fingerprinted fields, e.g. composite apps), apps that
// cannot be rebuilt by name, or platforms outside the registry. The
// round-trip is verified: the spec is reconstructed and must re-fingerprint
// to the original hash before it is allowed out the door.
func SpecFromJob(job lab.Job) (JobSpec, error) {
	if job.Prepare != nil {
		return JobSpec{}, fmt.Errorf("fleet: job %q has a Prepare hook, which does not serialize", job.Config.App.Name)
	}
	if job.Fork != nil {
		return JobSpec{}, fmt.Errorf("fleet: job %q is snapshot-accelerated (fork at %v) and is not remotable: prefix snapshots capture process-local closure state that cannot be rebuilt on a worker; it must simulate locally", job.Config.App.Name, job.Fork.At)
	}
	if job.Salt != "" {
		return JobSpec{}, fmt.Errorf("fleet: job %q is salted (%q): its config under-identifies the run, so a worker could not rebuild it", job.Config.App.Name, job.Salt)
	}
	fp, ok := lab.Fingerprint(job)
	if !ok {
		return JobSpec{}, fmt.Errorf("fleet: job %q carries live observers or an unnamed platform and cannot be fingerprinted", job.Config.App.Name)
	}
	cfg := job.Config.Normalized()
	s := JobSpec{
		App:       cfg.App.Name,
		Seed:      cfg.Seed,
		Duration:  cfg.Duration,
		Cores:     cfg.Cores,
		Sched:     cfg.Sched,
		Scheduler: cfg.Scheduler,
		Governor:  cfg.Governor,
		Gov:       cfg.Gov,
		PinnedMHz: cfg.PinnedMHz,
		Power:     cfg.Power,
		Thermal:   cfg.Thermal,
	}
	if cfg.Platform != nil {
		soc := cfg.Platform()
		if soc == nil || soc.Name == "" {
			return JobSpec{}, fmt.Errorf("fleet: job %q uses an unnamed platform", cfg.App.Name)
		}
		s.Platform = soc.Name
	}
	re, err := s.Job()
	if err != nil {
		return JobSpec{}, err
	}
	refp, ok := lab.Fingerprint(re)
	if !ok || refp != fp {
		return JobSpec{}, fmt.Errorf("fleet: job %q does not survive spec round-trip (fingerprint %s -> %s); it likely carries a custom app body under a standard name", cfg.App.Name, short(fp), short(refp))
	}
	s.Fingerprint = fp
	return s, nil
}

// Job reconstructs the runnable lab.Job a spec describes, resolving the app
// model and platform constructor by name. It does not verify the
// fingerprint — Verify does — because the coordinator also reconstructs
// specs it is only routing.
func (s JobSpec) Job() (lab.Job, error) {
	app, err := apps.ByName(s.App)
	if err != nil {
		return lab.Job{}, fmt.Errorf("fleet: spec names an app this build cannot construct: %w", err)
	}
	cfg := core.Config{
		App:       app,
		Seed:      s.Seed,
		Duration:  s.Duration,
		Cores:     s.Cores,
		Sched:     s.Sched,
		Scheduler: s.Scheduler,
		Governor:  s.Governor,
		Gov:       s.Gov,
		PinnedMHz: s.PinnedMHz,
		Power:     s.Power,
		Thermal:   s.Thermal,
	}
	if s.Platform != "" {
		ctor, ok := platforms[s.Platform]
		if !ok {
			return lab.Job{}, fmt.Errorf("fleet: spec names platform %q, which this build does not know", s.Platform)
		}
		cfg.Platform = ctor
	}
	return lab.Job{Config: cfg}, nil
}

// Verify reconstructs the spec's job and checks that it re-fingerprints to
// the hash the submitter stamped — the cross-process determinism gate.
func (s JobSpec) Verify() (lab.Job, error) {
	job, err := s.Job()
	if err != nil {
		return lab.Job{}, err
	}
	fp, ok := lab.Fingerprint(job)
	if !ok {
		return lab.Job{}, fmt.Errorf("fleet: reconstructed job %q is not fingerprintable", s.App)
	}
	if s.Fingerprint == "" {
		return lab.Job{}, fmt.Errorf("fleet: spec for %q carries no fingerprint", s.App)
	}
	if fp != s.Fingerprint {
		return lab.Job{}, fmt.Errorf("fleet: spec for %q fingerprints to %s here but was submitted as %s — mixed simulator versions in the fleet?", s.App, short(fp), short(s.Fingerprint))
	}
	return job, nil
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	if fp == "" {
		return "(none)"
	}
	return fp
}
