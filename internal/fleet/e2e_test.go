package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"biglittle/internal/core"
	"biglittle/internal/lab"
)

// startFleet serves a coordinator over real HTTP (httptest) and returns a
// client pointed at it — the full wire path workers and sweeps use.
func startFleet(t *testing.T, opt Options) (*Coordinator, *Client) {
	t.Helper()
	coord := NewCoordinator(opt)
	t.Cleanup(coord.Close)
	mux := http.NewServeMux()
	coord.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return coord, &Client{Base: srv.URL, Timeout: time.Minute, PollWait: 100 * time.Millisecond}
}

// startWorker runs a fleet worker (own runner, own cache) until the test
// ends, returning a cancel that waits for it to stop.
func startWorker(t *testing.T, client *Client, id string) context.CancelFunc {
	t.Helper()
	cache, err := lab.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{
		Client:    client,
		Runner:    &lab.Runner{Workers: 1, Cache: cache},
		ID:        id,
		LeaseWait: 50 * time.Millisecond,
		Backoff:   10 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	stop := func() {
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return stop
}

// TestFleetByteIdenticalToInProcess is the acceptance gate: a sweep executed
// through a coordinator and two worker processes' runners must produce the
// same bytes as plain in-process RunAll, in the same order.
func TestFleetByteIdenticalToInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fleet sweep")
	}
	_, client := startFleet(t, Options{})
	startWorker(t, client, "w1")
	startWorker(t, client, "w2")

	var jobs []lab.Job
	for seed := int64(1); seed <= 6; seed++ {
		jobs = append(jobs, testJob(t, seed))
	}

	remote := &lab.Runner{Workers: 4, Remote: client}
	got, err := remote.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s := remote.Stats(); s.Remote != int64(len(jobs)) || s.Simulated != 0 {
		t.Fatalf("stats = %+v, want all %d jobs remote", s, len(jobs))
	}

	local := &lab.Runner{Workers: 4}
	want, err := local.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if !bytes.Equal(a, b) {
		t.Fatalf("fleet results differ from in-process:\nfleet %s\nlocal %s", a, b)
	}
}

// TestForkJobsStayLocal pins the snapshot/fleet boundary end to end: a sweep
// mixing plain and fork-accelerated jobs through a live coordinator ships
// only the plain jobs out; fork jobs are rejected as non-remotable — loudly —
// and simulate locally, and the mixed sweep's bytes still equal in-process
// RunAll with no fleet attached.
func TestForkJobsStayLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fleet sweep")
	}
	_, client := startFleet(t, Options{})
	startWorker(t, client, "w1")
	var logBuf bytes.Buffer
	client.Log = slog.New(slog.NewTextHandler(&logBuf, nil))

	base := testJob(t, 1).Config
	jobs := []lab.Job{testJob(t, 1), testJob(t, 2)}
	for i := 0; i < 2; i++ {
		cfg := base
		cfg.Gov.SampleMs = 30 + 10*i
		jobs = append(jobs, lab.Job{Config: cfg, Fork: &lab.ForkSpec{Base: base, At: base.Duration / 2}})
	}

	// The fork spec must be rejected at the serialization boundary too, so a
	// direct Submit cannot smuggle one past the client.
	if _, err := SpecFromJob(jobs[2]); err == nil {
		t.Fatal("SpecFromJob accepted a fork-accelerated job")
	}

	remote := &lab.Runner{Workers: 2, Remote: client}
	got, err := remote.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s := remote.Stats(); s.Remote != 2 || s.Forks != 2 || s.Simulated != 2 {
		t.Fatalf("stats = %+v, want 2 remote plain jobs and 2 local forks", s)
	}
	if !strings.Contains(logBuf.String(), "non-remotable") {
		t.Fatalf("fork rejection was silent; client log:\n%s", logBuf.String())
	}

	local := &lab.Runner{Workers: 2}
	want, err := local.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if !bytes.Equal(a, b) {
		t.Fatalf("mixed fleet/fork sweep differs from in-process:\nfleet %s\nlocal %s", a, b)
	}
}

// TestWorkerKilledMidJob pins the robustness story end to end: a worker
// leases a job over HTTP and dies; the lease expires, a live worker reruns
// the job, and exactly one result lands.
func TestWorkerKilledMidJob(t *testing.T) {
	coord, client := startFleet(t, Options{LeaseTTL: 150 * time.Millisecond})
	spec := testSpec(t, 1)
	rep, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker takes the lease over the wire, then "crashes":
	// no renewal, no completion, no fail.
	g, err := client.Lease(context.Background(), "doomed", 100*time.Millisecond)
	if err != nil || g == nil {
		t.Fatalf("lease = %v, %v", g, err)
	}

	// The reaper requeues the job once the TTL lapses; a live worker then
	// picks it up and completes it.
	startWorker(t, client, "survivor")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := client.Await(ctx, rep.ID)
	if err != nil {
		t.Fatal(err)
	}

	st, err := client.JobStatus(context.Background(), rep.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Attempts != 2 || st.Worker != "survivor" {
		t.Fatalf("status = %+v, want done on attempt 2 by survivor", st)
	}
	s := coord.Stats()
	if s.Completed != 1 || s.LeaseExpiries != 1 || s.Retries != 1 {
		t.Fatalf("completed/expiries/retries = %d/%d/%d, want 1/1/1",
			s.Completed, s.LeaseExpiries, s.Retries)
	}

	// And the result is still the in-process result.
	want := core.Run(testJob(t, 1).Config)
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(want)
	if !bytes.Equal(a, b) {
		t.Fatalf("retried result differs from in-process:\n%s\n%s", a, b)
	}
}

// TestHTTPBackpressure pins the 429 contract on the wire: Retry-After is
// set, the typed error carries it, and draining turns submissions into 503.
func TestHTTPBackpressure(t *testing.T) {
	coord, client := startFleet(t, Options{MaxQueue: 1})
	if _, err := client.Submit(context.Background(), testSpec(t, 1)); err != nil {
		t.Fatal(err)
	}

	// Raw request so the header is visible.
	body, _ := json.Marshal(submitRequest{Spec: testSpec(t, 2)})
	resp, err := http.Post(client.Base+"/fleet/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The typed client surfaces it as backpressure, not a generic error.
	_, err = client.Submit(context.Background(), testSpec(t, 2))
	var bp errBackpressure
	if !errors.As(err, &bp) || bp.retryAfter <= 0 {
		t.Fatalf("client error = %v, want errBackpressure with a positive hint", err)
	}

	// Draining: /readyz flips 503 and submissions are refused outright.
	go coord.Drain(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for !coord.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r2, err := http.Get(client.Base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", r2.StatusCode)
	}
	h, err := http.Get(client.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200", h.StatusCode)
	}
}

// TestConcurrentSubmitLeaseComplete hammers one coordinator from many
// submitters and stub workers at once — the -race gate for the lock
// discipline around queue, leases, and long-polls.
func TestConcurrentSubmitLeaseComplete(t *testing.T) {
	coord, client := startFleet(t, Options{MaxQueue: 4}) // small: exercise backpressure too

	// Stub workers complete jobs without simulating (results need not be
	// real here; determinism is covered elsewhere).
	wctx, stopWorkers := context.WithCancel(context.Background())
	var workers sync.WaitGroup
	for i := 0; i < 3; i++ {
		workers.Add(1)
		go func(id string) {
			defer workers.Done()
			for wctx.Err() == nil {
				g, err := client.Lease(wctx, id, 50*time.Millisecond)
				if err != nil || g == nil {
					continue
				}
				client.Complete(wctx, g, id, core.Result{EnergyMJ: 1})
			}
		}(fmt.Sprintf("stub%d", i))
	}

	// Specs are minted on the test goroutine (testSpec may t.Fatal); seeds
	// collide so the dedup path runs concurrently too.
	const n = 24
	specs := make([]JobSpec, n)
	for i := range specs {
		specs[i] = testSpec(t, int64(i%8)+1)
	}
	var subs sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		subs.Add(1)
		go func(spec JobSpec) {
			defer subs.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			id, err := client.submit(ctx, spec) // backoff loop: rides out 429s
			if err != nil {
				errs <- err
				return
			}
			if _, err := client.Await(ctx, id); err != nil {
				errs <- err
			}
		}(specs[i])
	}
	subs.Wait()
	stopWorkers()
	workers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := coord.Stats(); s.Completed != 8 || s.FailedJobs != 0 {
		t.Fatalf("completed/failed = %d/%d, want 8 completed (one per distinct seed), 0 failed", s.Completed, s.FailedJobs)
	}
}
