package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"biglittle/internal/core"
	"biglittle/internal/lab"
	"biglittle/internal/telemetry"
)

// JobState is one job's position in the coordinator's state machine:
//
//	pending --lease--> leased --complete--> done
//	   ^                  |
//	   +--expiry/fail-----+   (attempts < MaxAttempts)
//	                      +--> failed        (attempts exhausted)
//
// A completion for a pending job (late result from an expired lease) moves
// it straight to done — the result is deterministic, so whoever finishes
// first wins and the requeued copy is dropped at lease time.
type JobState string

const (
	StatePending JobState = "pending"
	StateLeased  JobState = "leased"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is backpressure: the pending queue is at MaxQueue (429).
	ErrQueueFull = errors.New("fleet: job queue full")
	// ErrDraining: the coordinator is shutting down and not accepting
	// submissions or granting leases (503).
	ErrDraining = errors.New("fleet: coordinator draining")
	// ErrGone: the lease being renewed no longer exists (410).
	ErrGone = errors.New("fleet: lease expired or reassigned")
	// ErrUnknownJob: completion or query for a job id the coordinator does
	// not hold (404).
	ErrUnknownJob = errors.New("fleet: unknown job")
)

// Options configures a Coordinator; the zero value gets sane defaults.
type Options struct {
	// MaxQueue bounds the pending-job queue (default 1024). Submissions
	// beyond it get ErrQueueFull — the 429 backpressure signal.
	MaxQueue int
	// LeaseTTL is how long a worker holds a job before the coordinator
	// assumes the worker died and requeues it (default 30s). Workers renew
	// long-running leases.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times a job may be leased before it is
	// failed outright (default 3).
	MaxAttempts int
	// Retain is how long terminal jobs stay queryable before garbage
	// collection (default 5m).
	Retain time.Duration
	// Cache, when non-nil, memoizes results coordinator-side: submissions
	// hitting it complete instantly, and every published result is stored.
	Cache *lab.Cache
	// Tel receives the fleet metrics (nil: a private collector). Counters:
	// fleet_jobs_submitted, fleet_jobs_deduped, fleet_jobs_completed,
	// fleet_jobs_failed, fleet_cache_hits, fleet_leases_granted,
	// fleet_lease_expiries, fleet_retries, fleet_backpressure,
	// fleet_duplicate_results. Gauges: fleet_queue_depth,
	// fleet_leases_active, fleet_workers_live, fleet_jobs_per_sec.
	Tel *telemetry.Collector
	// Log, when non-nil, narrates job transitions at Debug and lifecycle
	// events at Info.
	Log *slog.Logger
	// Now overrides the clock (tests). Setting it also disables the
	// background lease reaper, so expiry happens only on explicit
	// ExpireLeases calls and fake-clock tests stay deterministic.
	Now func() time.Time
}

// Coordinator owns the job queue, the lease table, and worker liveness.
// All methods are safe for concurrent use; Close stops the lease reaper.
type Coordinator struct {
	opt Options

	mu       sync.Mutex
	jobs     map[string]*fleetJob // by job id (= spec fingerprint)
	queue    []string             // pending job ids, FIFO (lazily compacted)
	pending  int                  // exact count of StatePending jobs
	leases   map[string]*lease    // active leases by lease id
	workers  map[string]*workerInfo
	wake     chan struct{} // closed and replaced whenever work arrives
	draining bool
	seq      int64

	recent []time.Time // completion timestamps for the jobs/sec gauge

	stopReaper chan struct{}
	reaperDone chan struct{}
}

type fleetJob struct {
	id       string
	spec     JobSpec
	state    JobState
	attempts int
	cached   bool // completed straight from the coordinator cache
	worker   string
	result   core.Result
	errMsg   string
	enqueued time.Time
	finished time.Time
	done     chan struct{} // closed on entering done/failed
}

type lease struct {
	id     string
	jobID  string
	worker string
	expiry time.Time
}

type workerInfo struct {
	lastSeen  time.Time
	active    int
	completed int64
	failed    int64
}

// NewCoordinator builds a coordinator and starts its lease reaper.
func NewCoordinator(opt Options) *Coordinator {
	if opt.MaxQueue <= 0 {
		opt.MaxQueue = 1024
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 30 * time.Second
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 3
	}
	if opt.Retain <= 0 {
		opt.Retain = 5 * time.Minute
	}
	if opt.Tel == nil {
		opt.Tel = telemetry.NewCollector()
	}
	manualClock := opt.Now != nil
	if !manualClock {
		opt.Now = time.Now
	}
	c := &Coordinator{
		opt:        opt,
		jobs:       map[string]*fleetJob{},
		leases:     map[string]*lease{},
		workers:    map[string]*workerInfo{},
		wake:       make(chan struct{}),
		stopReaper: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	// Define every metric up front so /metrics shows explicit zeros (the
	// smoke test asserts fleet_jobs_failed 0, which requires the counter to
	// exist before anything fails).
	for _, name := range []string{
		"fleet_jobs_submitted", "fleet_jobs_deduped", "fleet_jobs_completed",
		"fleet_jobs_failed", "fleet_cache_hits", "fleet_leases_granted",
		"fleet_lease_expiries", "fleet_retries", "fleet_backpressure",
		"fleet_duplicate_results",
	} {
		c.opt.Tel.Counter(name)
	}
	c.opt.Tel.Gauge("fleet_queue_depth").Set(0)
	c.opt.Tel.Gauge("fleet_leases_active").Set(0)
	c.opt.Tel.Gauge("fleet_workers_live").Set(0)
	c.opt.Tel.Gauge("fleet_jobs_per_sec").Set(0)
	if manualClock {
		close(c.reaperDone) // no reaper to wait for in Close
	} else {
		go c.reap()
	}
	return c
}

// Close stops the lease reaper. Pending state is discarded with the
// coordinator; persistent memoization lives in the cache.
func (c *Coordinator) Close() {
	close(c.stopReaper)
	<-c.reaperDone
}

// Tel exposes the metrics collector (for mounting into a shared /metrics).
func (c *Coordinator) Tel() *telemetry.Collector { return c.opt.Tel }

func (c *Coordinator) logf(level slog.Level, msg string, args ...any) {
	if c.opt.Log != nil {
		c.opt.Log.Log(context.Background(), level, msg, args...)
	}
}

// reap expires leases and garbage-collects terminal jobs on a timer sized
// to the lease TTL.
func (c *Coordinator) reap() {
	defer close(c.reaperDone)
	interval := c.opt.LeaseTTL / 4
	if interval > time.Second {
		interval = time.Second
	}
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopReaper:
			return
		case <-t.C:
			c.ExpireLeases()
			c.gc()
		}
	}
}

// ExpireLeases requeues (or fails) every job whose lease has run out. The
// reaper calls it periodically; tests call it directly for determinism.
// It returns how many leases it expired.
func (c *Coordinator) ExpireLeases() int {
	now := c.opt.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for id, l := range c.leases {
		if now.Before(l.expiry) {
			continue
		}
		n++
		delete(c.leases, id)
		if w := c.workers[l.worker]; w != nil && w.active > 0 {
			w.active--
		}
		c.count("fleet_lease_expiries")
		job := c.jobs[l.jobID]
		if job == nil || job.state != StateLeased {
			continue // completed late or already gone; nothing to requeue
		}
		c.requeueLocked(job, fmt.Sprintf("lease %s on worker %q expired", id, l.worker))
	}
	c.updateGauges()
	return n
}

// requeueLocked puts a leased job back in the queue, or fails it when its
// attempts are spent. Caller holds c.mu.
func (c *Coordinator) requeueLocked(job *fleetJob, why string) {
	if job.attempts >= c.opt.MaxAttempts {
		job.state = StateFailed
		job.errMsg = fmt.Sprintf("%s after %d attempts (last: %s)", job.spec.App, job.attempts, why)
		job.finished = c.opt.Now()
		job.worker = ""
		close(job.done)
		c.count("fleet_jobs_failed")
		c.logf(slog.LevelInfo, "job failed", "job", short(job.id), "app", job.spec.App, "attempts", job.attempts, "why", why)
		return
	}
	job.state = StatePending
	job.worker = ""
	c.queue = append(c.queue, job.id)
	c.pending++
	c.count("fleet_retries")
	c.logf(slog.LevelDebug, "job requeued", "job", short(job.id), "app", job.spec.App, "attempts", job.attempts, "why", why)
	c.notifyLocked()
}

// notifyLocked wakes every lease long-poller. Caller holds c.mu.
func (c *Coordinator) notifyLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// count increments a fleet counter (registry is goroutine-safe).
func (c *Coordinator) count(name string) { c.opt.Tel.Counter(name).Inc() }

// updateGauges refreshes the depth/lease/worker gauges. Caller holds c.mu.
func (c *Coordinator) updateGauges() {
	c.opt.Tel.Gauge("fleet_queue_depth").Set(float64(c.pending))
	c.opt.Tel.Gauge("fleet_leases_active").Set(float64(len(c.leases)))
	live := 0
	horizon := c.opt.Now().Add(-3 * c.opt.LeaseTTL)
	for _, w := range c.workers {
		if w.lastSeen.After(horizon) {
			live++
		}
	}
	c.opt.Tel.Gauge("fleet_workers_live").Set(float64(live))
}

// SubmitReply describes where a submitted job landed.
type SubmitReply struct {
	ID      string   `json:"id"`
	State   JobState `json:"state"`
	Cached  bool     `json:"cached"`  // completed instantly from the coordinator cache
	Deduped bool     `json:"deduped"` // an identical job was already in flight or done
}

// Submit validates a spec, dedups it against in-flight and completed work,
// consults the coordinator cache, and otherwise enqueues it. ErrQueueFull
// signals backpressure; ErrDraining a shutdown in progress.
func (c *Coordinator) Submit(spec JobSpec) (SubmitReply, error) {
	// Validate outside the lock: reconstruction re-runs the fingerprint.
	if _, err := spec.Verify(); err != nil {
		return SubmitReply{}, err
	}
	id := spec.Fingerprint

	c.mu.Lock()
	defer c.mu.Unlock()
	c.count("fleet_jobs_submitted")
	if c.draining {
		return SubmitReply{}, ErrDraining
	}
	if job, ok := c.jobs[id]; ok {
		c.count("fleet_jobs_deduped")
		return SubmitReply{ID: id, State: job.state, Cached: job.cached, Deduped: true}, nil
	}
	if c.opt.Cache != nil {
		if res, ok := c.opt.Cache.Get(id); ok {
			job := &fleetJob{
				id: id, spec: spec, state: StateDone, cached: true,
				result: res, enqueued: c.opt.Now(), finished: c.opt.Now(),
				done: make(chan struct{}),
			}
			close(job.done)
			c.jobs[id] = job
			c.count("fleet_cache_hits")
			c.logf(slog.LevelDebug, "job served from cache", "job", short(id), "app", spec.App)
			return SubmitReply{ID: id, State: StateDone, Cached: true}, nil
		}
	}
	if c.pending >= c.opt.MaxQueue {
		c.count("fleet_backpressure")
		return SubmitReply{}, ErrQueueFull
	}
	job := &fleetJob{
		id: id, spec: spec, state: StatePending,
		enqueued: c.opt.Now(), done: make(chan struct{}),
	}
	c.jobs[id] = job
	c.queue = append(c.queue, id)
	c.pending++
	c.notifyLocked()
	c.updateGauges()
	c.logf(slog.LevelDebug, "job queued", "job", short(id), "app", spec.App, "depth", c.pending)
	return SubmitReply{ID: id, State: StatePending}, nil
}

// LeaseGrant hands one job to a worker for at most TTL.
type LeaseGrant struct {
	Lease string        `json:"lease"`
	Job   string        `json:"job"`
	TTL   time.Duration `json:"ttl_ns"`
	Spec  JobSpec       `json:"spec"`
}

// Lease grants the oldest pending job to worker, long-polling up to maxWait
// for work to arrive. Returns (nil, nil) when no work appeared in time,
// ErrDraining while shutting down.
func (c *Coordinator) Lease(ctx context.Context, worker string, maxWait time.Duration) (*LeaseGrant, error) {
	deadline := c.opt.Now().Add(maxWait)
	for {
		c.mu.Lock()
		c.touchLocked(worker)
		if c.draining {
			c.mu.Unlock()
			return nil, ErrDraining
		}
		if g := c.grantLocked(worker); g != nil {
			c.updateGauges()
			c.mu.Unlock()
			return g, nil
		}
		wake := c.wake
		c.mu.Unlock()

		remaining := deadline.Sub(c.opt.Now())
		if remaining <= 0 {
			return nil, nil
		}
		t := time.NewTimer(remaining)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
			return nil, nil
		case <-wake:
			t.Stop()
		}
	}
}

// grantLocked pops the first still-pending job from the queue and builds
// its lease. Jobs that completed or failed while queued are skipped and
// dropped from the queue. Caller holds c.mu.
func (c *Coordinator) grantLocked(worker string) *LeaseGrant {
	for len(c.queue) > 0 {
		id := c.queue[0]
		c.queue = c.queue[1:]
		job := c.jobs[id]
		if job == nil || job.state != StatePending {
			continue // completed late, failed, or GC'd while queued
		}
		c.pending--
		job.state = StateLeased
		job.attempts++
		job.worker = worker
		c.seq++
		l := &lease{
			id:     fmt.Sprintf("l%d", c.seq),
			jobID:  id,
			worker: worker,
			expiry: c.opt.Now().Add(c.opt.LeaseTTL),
		}
		c.leases[l.id] = l
		if w := c.workers[worker]; w != nil {
			w.active++
		}
		c.count("fleet_leases_granted")
		c.logf(slog.LevelDebug, "lease granted", "lease", l.id, "job", short(id), "app", job.spec.App, "worker", worker, "attempt", job.attempts)
		return &LeaseGrant{Lease: l.id, Job: id, TTL: c.opt.LeaseTTL, Spec: job.spec}
	}
	return nil
}

// touchLocked records worker liveness. Caller holds c.mu.
func (c *Coordinator) touchLocked(worker string) {
	if worker == "" {
		return
	}
	w := c.workers[worker]
	if w == nil {
		w = &workerInfo{}
		c.workers[worker] = w
	}
	w.lastSeen = c.opt.Now()
}

// Renew extends an active lease by one TTL — the worker heartbeat for jobs
// that outlive the TTL. ErrGone tells the worker its job was reassigned.
func (c *Coordinator) Renew(leaseID, worker string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(worker)
	l, ok := c.leases[leaseID]
	if !ok {
		return ErrGone
	}
	l.expiry = c.opt.Now().Add(c.opt.LeaseTTL)
	return nil
}

// Complete publishes a finished job's result. It is idempotent against
// expired leases and duplicate completions: the first result a job sees
// wins (results are deterministic, so any duplicate is byte-identical) and
// later arrivals are counted and discarded.
func (c *Coordinator) Complete(leaseID, jobID, worker string, res core.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(worker)
	c.releaseLocked(leaseID, &jobID)
	job := c.jobs[jobID]
	if job == nil {
		return ErrUnknownJob
	}
	if job.state == StateDone || job.state == StateFailed {
		c.count("fleet_duplicate_results")
		c.logf(slog.LevelDebug, "duplicate result discarded", "job", short(jobID), "worker", worker)
		return nil
	}
	if job.state == StatePending {
		// Late completion from an expired lease: the job is queued again but
		// the result arrived anyway. Accept it; the queued copy is skipped at
		// grant time because the state is no longer pending.
		c.pending--
	}
	job.state = StateDone
	job.result = res
	job.worker = worker
	job.finished = c.opt.Now()
	close(job.done)
	if w := c.workers[worker]; w != nil {
		w.completed++
	}
	c.count("fleet_jobs_completed")
	c.recent = append(c.recent, job.finished)
	if len(c.recent) > 4096 {
		c.recent = append([]time.Time(nil), c.recent[len(c.recent)-2048:]...)
	}
	if c.opt.Cache != nil {
		c.opt.Cache.Put(jobID, job.spec.App, "", res)
	}
	c.updateGauges()
	c.logf(slog.LevelDebug, "job completed", "job", short(jobID), "app", job.spec.App, "worker", worker)
	return nil
}

// Fail reports that a worker could not execute its leased job. The job is
// requeued for another attempt, or failed once its attempts are spent.
func (c *Coordinator) Fail(leaseID, jobID, worker, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(worker)
	c.releaseLocked(leaseID, &jobID)
	job := c.jobs[jobID]
	if job == nil {
		return ErrUnknownJob
	}
	if w := c.workers[worker]; w != nil {
		w.failed++
	}
	if job.state != StateLeased {
		return nil // already completed elsewhere or requeued by expiry
	}
	c.requeueLocked(job, fmt.Sprintf("worker %q: %s", worker, msg))
	c.updateGauges()
	return nil
}

// releaseLocked drops an active lease and back-fills jobID from it when the
// caller sent only the lease. Caller holds c.mu.
func (c *Coordinator) releaseLocked(leaseID string, jobID *string) {
	l, ok := c.leases[leaseID]
	if !ok {
		return
	}
	if *jobID == "" {
		*jobID = l.jobID
	}
	delete(c.leases, leaseID)
	if w := c.workers[l.worker]; w != nil && w.active > 0 {
		w.active--
	}
}

// JobStatus is the queryable view of one job.
type JobStatus struct {
	ID       string       `json:"id"`
	App      string       `json:"app"`
	State    JobState     `json:"state"`
	Attempts int          `json:"attempts"`
	Cached   bool         `json:"cached"`
	Worker   string       `json:"worker,omitempty"`
	Result   *core.Result `json:"result,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// Job returns a job's status, long-polling up to maxWait for it to reach a
// terminal state (maxWait <= 0: immediate snapshot).
func (c *Coordinator) Job(ctx context.Context, id string, maxWait time.Duration) (JobStatus, error) {
	c.mu.Lock()
	job := c.jobs[id]
	if job == nil {
		c.mu.Unlock()
		return JobStatus{}, ErrUnknownJob
	}
	done := job.done
	c.mu.Unlock()

	if maxWait > 0 {
		t := time.NewTimer(maxWait)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	st := JobStatus{
		ID: job.id, App: job.spec.App, State: job.state,
		Attempts: job.attempts, Cached: job.cached, Worker: job.worker,
		Error: job.errMsg,
	}
	if job.state == StateDone {
		res := job.result
		st.Result = &res
	}
	return st, nil
}

// gc drops terminal jobs older than the retention window so a sweep of
// millions of configs does not pin them all in coordinator memory.
func (c *Coordinator) gc() {
	horizon := c.opt.Now().Add(-c.opt.Retain)
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, job := range c.jobs {
		if (job.state == StateDone || job.state == StateFailed) && job.finished.Before(horizon) {
			delete(c.jobs, id)
		}
	}
}

// Drain stops granting leases and accepting submissions, then waits for
// every active lease to finish (complete, fail, or expire) or for ctx to
// run out. The graceful-shutdown half of the lease protocol: /readyz flips
// to 503 the moment draining starts.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.notifyLocked() // release long-polling lease waiters into ErrDraining
	c.mu.Unlock()
	c.logf(slog.LevelInfo, "draining: no new leases; waiting for in-flight jobs")
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		c.ExpireLeases()
		c.mu.Lock()
		n := len(c.leases)
		c.mu.Unlock()
		if n == 0 {
			c.logf(slog.LevelInfo, "drained")
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: drain timed out with %d leases still active", n)
		case <-t.C:
		}
	}
}

// Draining reports whether Drain has started (readyz 503).
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// LeaseView is one active lease in a stats snapshot.
type LeaseView struct {
	Lease   string  `json:"lease"`
	Job     string  `json:"job"`
	App     string  `json:"app"`
	Worker  string  `json:"worker"`
	Attempt int     `json:"attempt"`
	AgeSec  float64 `json:"age_sec"`
	TTLSec  float64 `json:"ttl_sec"` // time until expiry
}

// WorkerView is one worker's liveness row in a stats snapshot.
type WorkerView struct {
	ID          string  `json:"id"`
	LastSeenSec float64 `json:"last_seen_sec"` // seconds since last contact
	Live        bool    `json:"live"`          // seen within 3 lease TTLs
	Active      int     `json:"active"`
	Completed   int64   `json:"completed"`
	Failed      int64   `json:"failed"`
}

// Stats is the coordinator's queue/lease/worker snapshot (GET /fleet/stats,
// `bllab fleet`).
type Stats struct {
	Draining   bool    `json:"draining"`
	QueueDepth int     `json:"queue_depth"`
	Jobs       int     `json:"jobs"` // jobs currently held (all states)
	Pending    int     `json:"pending"`
	Leased     int     `json:"leased"`
	Done       int     `json:"done"`
	Failed     int     `json:"failed"`
	JobsPerSec float64 `json:"jobs_per_sec"` // completions over the last 10s

	Submitted     int64 `json:"submitted"`
	Deduped       int64 `json:"deduped"`
	Completed     int64 `json:"completed"`
	FailedJobs    int64 `json:"failed_jobs"`
	CacheHits     int64 `json:"cache_hits"`
	LeaseExpiries int64 `json:"lease_expiries"`
	Retries       int64 `json:"retries"`
	Backpressure  int64 `json:"backpressure"`

	Leases  []LeaseView  `json:"leases,omitempty"`
	Workers []WorkerView `json:"workers,omitempty"`
}

// Stats snapshots the coordinator and refreshes the derived gauges.
func (c *Coordinator) Stats() Stats {
	now := c.opt.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Draining:      c.draining,
		QueueDepth:    c.pending,
		Jobs:          len(c.jobs),
		Submitted:     c.opt.Tel.Counter("fleet_jobs_submitted").Value(),
		Deduped:       c.opt.Tel.Counter("fleet_jobs_deduped").Value(),
		Completed:     c.opt.Tel.Counter("fleet_jobs_completed").Value(),
		FailedJobs:    c.opt.Tel.Counter("fleet_jobs_failed").Value(),
		CacheHits:     c.opt.Tel.Counter("fleet_cache_hits").Value(),
		LeaseExpiries: c.opt.Tel.Counter("fleet_lease_expiries").Value(),
		Retries:       c.opt.Tel.Counter("fleet_retries").Value(),
		Backpressure:  c.opt.Tel.Counter("fleet_backpressure").Value(),
	}
	for _, job := range c.jobs {
		switch job.state {
		case StatePending:
			s.Pending++
		case StateLeased:
			s.Leased++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		}
	}
	// Completions in the last 10 s -> jobs/sec.
	window := now.Add(-10 * time.Second)
	n := 0
	for i := len(c.recent) - 1; i >= 0 && c.recent[i].After(window); i-- {
		n++
	}
	s.JobsPerSec = float64(n) / 10
	c.opt.Tel.Gauge("fleet_jobs_per_sec").Set(s.JobsPerSec)

	for id, l := range c.leases {
		app := ""
		if job := c.jobs[l.jobID]; job != nil {
			app = job.spec.App
		}
		attempt := 0
		if job := c.jobs[l.jobID]; job != nil {
			attempt = job.attempts
		}
		s.Leases = append(s.Leases, LeaseView{
			Lease: id, Job: short(l.jobID), App: app, Worker: l.worker,
			Attempt: attempt,
			AgeSec:  now.Sub(l.expiry.Add(-c.opt.LeaseTTL)).Seconds(),
			TTLSec:  l.expiry.Sub(now).Seconds(),
		})
	}
	sort.Slice(s.Leases, func(i, j int) bool { return s.Leases[i].Lease < s.Leases[j].Lease })
	horizon := now.Add(-3 * c.opt.LeaseTTL)
	for id, w := range c.workers {
		s.Workers = append(s.Workers, WorkerView{
			ID: id, LastSeenSec: now.Sub(w.lastSeen).Seconds(),
			Live: w.lastSeen.After(horizon), Active: w.active,
			Completed: w.completed, Failed: w.failed,
		})
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].ID < s.Workers[j].ID })
	c.updateGauges()
	return s
}
