package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	"biglittle/internal/apps"
	"biglittle/internal/core"
	"biglittle/internal/event"
	"biglittle/internal/lab"
	"biglittle/internal/telemetry"
)

// testJob builds a small, fully remotable job; seeds vary the fingerprint so
// tests can mint distinct jobs cheaply.
func testJob(t *testing.T, seed int64) lab.Job {
	t.Helper()
	app, err := apps.ByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(app)
	cfg.Duration = 200 * event.Millisecond
	cfg.Seed = seed
	return lab.Job{Config: cfg}
}

func TestSpecRoundTrip(t *testing.T) {
	job := testJob(t, 1)
	fp, ok := lab.Fingerprint(job)
	if !ok {
		t.Fatal("test job should be fingerprintable")
	}
	spec, err := SpecFromJob(job)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Fingerprint != fp {
		t.Fatalf("spec fingerprint %s, job fingerprints to %s", spec.Fingerprint, fp)
	}

	// The wire trip must not perturb identity: JSON out, JSON in, re-verify.
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	re, err := back.Verify()
	if err != nil {
		t.Fatalf("round-tripped spec fails verification: %v", err)
	}
	refp, _ := lab.Fingerprint(re)
	if refp != fp {
		t.Fatalf("reconstructed job fingerprints to %s, want %s", refp, fp)
	}
}

func TestSpecRejectsNonRemotable(t *testing.T) {
	cases := map[string]struct {
		mutate func(*lab.Job)
		want   string
	}{
		"prepare hook": {func(j *lab.Job) { j.Prepare = func(*core.Config) {} }, "Prepare"},
		"salted":       {func(j *lab.Job) { j.Salt = "composite" }, "salted"},
		"live observer": {func(j *lab.Job) {
			j.Config.Telemetry = telemetry.NewCollector()
		}, "observers"},
	}
	for name, tc := range cases {
		job := testJob(t, 1)
		tc.mutate(&job)
		_, err := SpecFromJob(job)
		if err == nil {
			t.Errorf("%s: SpecFromJob accepted a non-remotable job", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	spec, err := SpecFromJob(testJob(t, 1))
	if err != nil {
		t.Fatal(err)
	}

	tampered := spec
	tampered.Seed = 999 // changes the config but not the stamped fingerprint
	if _, err := tampered.Verify(); err == nil {
		t.Fatal("Verify accepted a spec whose config no longer matches its fingerprint")
	}

	unstamped := spec
	unstamped.Fingerprint = ""
	if _, err := unstamped.Verify(); err == nil {
		t.Fatal("Verify accepted a spec with no fingerprint")
	}

	unknownApp := spec
	unknownApp.App = "no-such-app"
	if _, err := unknownApp.Verify(); err == nil {
		t.Fatal("Verify accepted a spec naming an unknown app")
	}

	unknownPlatform := spec
	unknownPlatform.Platform = "no-such-soc"
	if _, err := unknownPlatform.Verify(); err == nil {
		t.Fatal("Verify accepted a spec naming an unknown platform")
	}
}
