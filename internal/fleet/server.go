package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"biglittle/internal/core"
)

// Wire messages for the coordinator's HTTP JSON API. Every endpoint is
// plain JSON over POST/GET so a worker can be curl; the status-code
// contract is the interesting part:
//
//	POST /fleet/jobs          202 queued/done | 400 bad spec | 429 full (Retry-After) | 503 draining
//	GET  /fleet/jobs/{id}     200 status (?wait=5s long-polls for terminal) | 404
//	POST /fleet/lease         200 grant | 204 no work | 503 draining
//	POST /fleet/renew         204 | 410 lease gone
//	POST /fleet/complete      204 (idempotent) | 404 unknown job
//	POST /fleet/fail          204 | 404 unknown job
//	GET  /fleet/stats         200 queue/lease/worker snapshot
//	GET  /healthz             200 while the process lives
//	GET  /readyz              200 serving | 503 draining
type submitRequest struct {
	Spec JobSpec `json:"spec"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
	// WaitMs long-polls for work up to this long before 204.
	WaitMs int64 `json:"wait_ms"`
}

type renewRequest struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
}

type completeRequest struct {
	Lease  string      `json:"lease"`
	Job    string      `json:"job"`
	Worker string      `json:"worker"`
	Result core.Result `json:"result"`
}

type failRequest struct {
	Lease  string `json:"lease"`
	Job    string `json:"job"`
	Worker string `json:"worker"`
	Error  string `json:"error"`
}

// Mount registers the coordinator API on mux. The caller owns the server
// lifecycle; blserve mounts this next to its observability routes.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /fleet/jobs", c.handleSubmit)
	mux.HandleFunc("GET /fleet/jobs/{id}", c.handleJob)
	mux.HandleFunc("POST /fleet/lease", c.handleLease)
	mux.HandleFunc("POST /fleet/renew", c.handleRenew)
	mux.HandleFunc("POST /fleet/complete", c.handleComplete)
	mux.HandleFunc("POST /fleet/fail", c.handleFail)
	mux.HandleFunc("GET /fleet/stats", c.handleStats)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if !decode(w, r, &req) {
		return
	}
	rep, err := c.Submit(req.Spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		writeJSON(w, http.StatusAccepted, rep)
	}
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	wait := time.Duration(0)
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			http.Error(w, "bad wait duration: "+err.Error(), http.StatusBadRequest)
			return
		}
		wait = d
	}
	st, err := c.Job(r.Context(), r.PathValue("id"), wait)
	if errors.Is(err, ErrUnknownJob) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decode(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	// Cap server-side long-poll so a dead client cannot pin a handler.
	if wait > time.Minute {
		wait = time.Minute
	}
	g, err := c.Lease(r.Context(), req.Worker, wait)
	switch {
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case err != nil:
		// Client went away mid-poll; nothing to send.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	case g == nil:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusOK, g)
	}
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.Renew(req.Lease, req.Worker); err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.Complete(req.Lease, req.Job, req.Worker, req.Result); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.Fail(req.Lease, req.Job, req.Worker, req.Error); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Stats())
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ready\n"))
}
