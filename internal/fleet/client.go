package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"biglittle/internal/core"
	"biglittle/internal/lab"
)

// Client talks to a coordinator. It implements lab.Executor, so attaching
// one to lab.Runner.Remote routes every fingerprintable job through the
// fleet; it is also the worker's and bllab's API handle.
//
// The zero value is not usable — Base is required. All methods are safe for
// concurrent use (RunAll calls Execute from every pool worker).
type Client struct {
	// Base is the coordinator root, e.g. "http://127.0.0.1:8377".
	Base string
	// HTTP overrides the transport (default: http.DefaultClient with no
	// global timeout; every request carries a context deadline instead,
	// sized to the long-poll it performs).
	HTTP *http.Client
	// Timeout bounds one Execute end to end — submission backoff included
	// (default 10m). A sweep behind a full queue waits patiently; a dead
	// coordinator fails fast on connection errors instead.
	Timeout time.Duration
	// PollWait is the long-poll window per result query (default 10s).
	PollWait time.Duration
	// Log, when non-nil, narrates submissions and backpressure at Debug.
	Log *slog.Logger

	// forkWarned dedupes the fork-job decline warning: an explore or fork
	// sweep routes thousands of fork-accelerated jobs past the executor, and
	// one Warn explains the routing better than one per job.
	forkWarned atomic.Bool
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 10 * time.Minute
}

func (c *Client) pollWait() time.Duration {
	if c.PollWait > 0 {
		return c.PollWait
	}
	return 10 * time.Second
}

// errBackpressure carries the coordinator's Retry-After hint.
type errBackpressure struct{ retryAfter time.Duration }

func (e errBackpressure) Error() string {
	return fmt.Sprintf("fleet: queue full, retry after %v", e.retryAfter)
}

// Execute implements lab.Executor: serialize the job, submit it (honoring
// 429 backpressure), and long-poll for the result. Jobs that cannot travel
// return ok=false so the runner simulates them locally.
func (c *Client) Execute(job lab.Job) (core.Result, bool, error) {
	if job.Fork != nil {
		// Louder than the generic decline: a caller who pointed a
		// fork-accelerated sweep at the fleet should see why it ran locally.
		// Warned once per client — a rung of thousands of fork jobs (blexplore
		// screening) stays local by design, not per-job surprise.
		if c.Log != nil && c.forkWarned.CompareAndSwap(false, true) {
			c.Log.Warn("fork-accelerated jobs are non-remotable; simulating them locally (full-fidelity from-scratch rungs still ship to the fleet)",
				"app", job.Config.App.Name, "fork_at", job.Fork.At)
		}
		return core.Result{}, false, nil
	}
	spec, err := SpecFromJob(job)
	if err != nil {
		if c.Log != nil {
			c.Log.Debug("job not remotable", "app", job.Config.App.Name, "why", err)
		}
		return core.Result{}, false, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout())
	defer cancel()
	id, err := c.submit(ctx, spec)
	if err != nil {
		return core.Result{}, true, err
	}
	res, err := c.Await(ctx, id)
	return res, true, err
}

// Submit sends one spec, returning the job id. A full queue surfaces as an
// error carrying the Retry-After hint; submit() below wraps it in a
// backoff loop.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (SubmitReply, error) {
	var rep SubmitReply
	status, body, hdr, err := c.post(ctx, "/fleet/jobs", submitRequest{Spec: spec}, &rep)
	if err != nil {
		return SubmitReply{}, err
	}
	switch status {
	case http.StatusAccepted:
		return rep, nil
	case http.StatusTooManyRequests:
		ra := time.Second
		if v := hdr.Get("Retry-After"); v != "" {
			if secs, perr := strconv.Atoi(v); perr == nil && secs > 0 {
				ra = time.Duration(secs) * time.Second
			}
		}
		return SubmitReply{}, errBackpressure{retryAfter: ra}
	default:
		return SubmitReply{}, fmt.Errorf("fleet: submit %s: %s", spec.App, httpError(status, body))
	}
}

// submit retries backpressured submissions until ctx expires, per the
// coordinator's Retry-After hint.
func (c *Client) submit(ctx context.Context, spec JobSpec) (string, error) {
	for {
		rep, err := c.Submit(ctx, spec)
		var bp errBackpressure
		if !errors.As(err, &bp) {
			if err != nil {
				return "", err
			}
			return rep.ID, nil
		}
		if c.Log != nil {
			c.Log.Debug("backpressured", "app", spec.App, "retry_after", bp.retryAfter)
		}
		t := time.NewTimer(bp.retryAfter)
		select {
		case <-ctx.Done():
			t.Stop()
			return "", fmt.Errorf("fleet: gave up submitting %s under backpressure: %w", spec.App, ctx.Err())
		case <-t.C:
		}
	}
}

// Await long-polls a job until it is done or failed.
func (c *Client) Await(ctx context.Context, id string) (core.Result, error) {
	for {
		st, err := c.JobStatus(ctx, id, c.pollWait())
		if err != nil {
			return core.Result{}, err
		}
		switch st.State {
		case StateDone:
			if st.Result == nil {
				return core.Result{}, fmt.Errorf("fleet: job %s done without result", short(id))
			}
			return *st.Result, nil
		case StateFailed:
			return core.Result{}, fmt.Errorf("fleet: job %s failed on the fleet: %s", short(id), st.Error)
		}
		if ctx.Err() != nil {
			return core.Result{}, fmt.Errorf("fleet: timed out awaiting job %s: %w", short(id), ctx.Err())
		}
	}
}

// JobStatus queries one job, long-polling up to wait for a terminal state.
func (c *Client) JobStatus(ctx context.Context, id string, wait time.Duration) (JobStatus, error) {
	url := c.Base + "/fleet/jobs/" + id
	if wait > 0 {
		url += "?wait=" + wait.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, fmt.Errorf("fleet: coordinator unreachable: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, fmt.Errorf("fleet: job %s: %s", short(id), httpError(resp.StatusCode, body))
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return JobStatus{}, fmt.Errorf("fleet: bad job status: %w", err)
	}
	return st, nil
}

// Lease asks for work on behalf of a worker, long-polling up to wait.
// Returns (nil, nil) when the coordinator had nothing, ErrDraining when it
// is shutting down.
func (c *Client) Lease(ctx context.Context, worker string, wait time.Duration) (*LeaseGrant, error) {
	var g LeaseGrant
	status, body, _, err := c.post(ctx, "/fleet/lease",
		leaseRequest{Worker: worker, WaitMs: wait.Milliseconds()}, &g)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		return &g, nil
	case http.StatusNoContent:
		return nil, nil
	case http.StatusServiceUnavailable:
		return nil, ErrDraining
	default:
		return nil, fmt.Errorf("fleet: lease: %s", httpError(status, body))
	}
}

// Renew extends a lease; ErrGone means the job was reassigned.
func (c *Client) Renew(ctx context.Context, leaseID, worker string) error {
	status, body, _, err := c.post(ctx, "/fleet/renew", renewRequest{Lease: leaseID, Worker: worker}, nil)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusNoContent:
		return nil
	case http.StatusGone:
		return ErrGone
	default:
		return fmt.Errorf("fleet: renew: %s", httpError(status, body))
	}
}

// Complete publishes a result for a leased job.
func (c *Client) Complete(ctx context.Context, g *LeaseGrant, worker string, res core.Result) error {
	status, body, _, err := c.post(ctx, "/fleet/complete",
		completeRequest{Lease: g.Lease, Job: g.Job, Worker: worker, Result: res}, nil)
	if err != nil {
		return err
	}
	if status != http.StatusNoContent {
		return fmt.Errorf("fleet: complete: %s", httpError(status, body))
	}
	return nil
}

// Fail reports a job the worker could not execute.
func (c *Client) Fail(ctx context.Context, g *LeaseGrant, worker, msg string) error {
	status, body, _, err := c.post(ctx, "/fleet/fail",
		failRequest{Lease: g.Lease, Job: g.Job, Worker: worker, Error: msg}, nil)
	if err != nil {
		return err
	}
	if status != http.StatusNoContent {
		return fmt.Errorf("fleet: fail: %s", httpError(status, body))
	}
	return nil
}

// Stats fetches the coordinator's queue/lease/worker snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/fleet/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return Stats{}, fmt.Errorf("fleet: coordinator unreachable: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("fleet: stats: %s", httpError(resp.StatusCode, body))
	}
	var s Stats
	if err := json.Unmarshal(body, &s); err != nil {
		return Stats{}, fmt.Errorf("fleet: bad stats: %w", err)
	}
	return s, nil
}

// post sends one JSON request and decodes a JSON reply into out (when out
// is non-nil and the status carries a body worth decoding).
func (c *Client) post(ctx context.Context, path string, in, out any) (int, []byte, http.Header, error) {
	payload, err := json.Marshal(in)
	if err != nil {
		return 0, nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("fleet: coordinator unreachable: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 && len(body) > 0 {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, body, resp.Header, fmt.Errorf("fleet: bad reply from %s: %w", path, err)
		}
	}
	return resp.StatusCode, body, resp.Header, nil
}

func httpError(status int, body []byte) string {
	msg := string(bytes.TrimSpace(body))
	if len(msg) > 200 {
		msg = msg[:200] + "..."
	}
	if msg == "" {
		return fmt.Sprintf("HTTP %d", status)
	}
	return fmt.Sprintf("HTTP %d: %s", status, msg)
}
