// Package delta is the cross-run differential observability layer: state
// digest chains that fingerprint a run and make any two runs cheaply
// comparable, a first-divergence finder over those chains, and aligned
// structural diffing of results, profiles, and xray span streams with
// tolerance-aware significance marking.
//
// The Recorder follows the repo's pure-observer contract (telemetry, profile,
// xray, check): it chains onto sched.System.TickHook, reads simulator state
// after SyncAll has settled it, and never writes back. A nil *Recorder is
// valid everywhere; recording off costs one pointer check and zero
// allocations, and recording on changes no simulated byte.
package delta

import (
	"fmt"
	"math"

	"biglittle/internal/event"
	"biglittle/internal/metrics"
	"biglittle/internal/sched"
	"biglittle/internal/thermal"
)

// FNV-1a constants, folded over whole uint64 words rather than bytes: the
// digest is a determinism fingerprint, not a cryptographic hash, and word
// folding keeps the per-tick cost at a handful of multiplies.
const (
	offset64 = 0xcbf29ce484222325
	prime64  = 0x100000001b3
)

func mix(h, x uint64) uint64 {
	h ^= x
	h *= prime64
	return h
}

func mixf(h uint64, x float64) uint64 { return mix(h, math.Float64bits(x)) }

// DefaultWindows is the target digest-chain length: enough resolution to
// bisect a run into ~millisecond windows, small enough to compare and ship
// around as a fingerprint.
const DefaultWindows = 1024

// Chain is a sealed digest chain: one cumulative digest per elapsed window.
// Digests chain (window i's digest folds window i-1's), so two runs agree on
// a prefix of windows iff their chains agree on that prefix, and the first
// differing index is the first window in which simulator state diverged.
type Chain struct {
	// Window is the window length the digests were folded over.
	Window event.Time `json:"window_ns"`
	// Digests holds one cumulative digest per window, in time order.
	Digests []uint64 `json:"digests"`
}

// Fingerprint returns the whole-run digest: the last chained window digest,
// or the FNV offset basis for an empty chain.
func (c Chain) Fingerprint() uint64 {
	if len(c.Digests) == 0 {
		return offset64
	}
	return c.Digests[len(c.Digests)-1]
}

// FirstDivergentWindow compares two chains and returns the index of the
// first differing window, or -1 if one chain is a prefix of the other and
// they agree everywhere both have digests (identical runs of equal duration
// return -1 with equal lengths). Comparing chains folded over different
// window lengths is a category error and returns an error.
func FirstDivergentWindow(a, b Chain) (int, error) {
	if a.Window != b.Window {
		return 0, fmt.Errorf("delta: chains have different windows (%v vs %v); re-record with a common window", a.Window, b.Window)
	}
	n := len(a.Digests)
	if len(b.Digests) < n {
		n = len(b.Digests)
	}
	for i := 0; i < n; i++ {
		if a.Digests[i] != b.Digests[i] {
			return i, nil
		}
	}
	return -1, nil
}

// Step is one full-rate state capture: the exact per-component values folded
// into the digest at one scheduler tick, kept only inside the Recorder's
// [FullFrom, FullTo) range so a second diagnostic pass can name which
// component diverged first and by how much.
type Step struct {
	At    event.Time `json:"at"`
	Fired uint64     `json:"fired"` // event-engine fires so far
	// Per-cluster frequency state.
	FreqMHz []int `json:"freq_mhz"`
	CapMHz  []int `json:"cap_mhz"`
	// Per-core state.
	Online   []bool       `json:"online"`
	QueueLen []int        `json:"queue_len"`
	BusyNs   []event.Time `json:"busy_ns"`
	// Per-task state, index-aligned with TaskNames.
	TaskNames  []string  `json:"task_names"`
	TaskLoad   []int     `json:"task_load"`
	TaskCPU    []int     `json:"task_cpu"`
	TaskQueued []int     `json:"task_queued"`
	TaskState  []string  `json:"task_state"`
	TaskWork   []float64 `json:"task_work"`
	Migrations []int     `json:"migrations"`
	// Whole-system signals.
	EnergyMJ float64   `json:"energy_mj"`
	TempC    []float64 `json:"temp_c,omitempty"`
	// Digest is this single tick's fold (not the chained window digest).
	Digest uint64 `json:"digest"`
}

// Recorder folds a rolling hash of simulator state — event-engine fires,
// task placements and loads, per-core queues and busy time, per-cluster
// frequency and caps, temperatures, meter energy — into chained per-window
// digests at every scheduler tick. Configure before Attach; zero value
// records DefaultWindows windows and no full-rate steps.
type Recorder struct {
	// Window is the digest window length. Zero means duration/DefaultWindows
	// (floored at one scheduler tick), resolved at Attach.
	Window event.Time
	// FullFrom/FullTo bound full-rate Step capture: every tick in
	// [FullFrom, FullTo) stores a Step. FullTo <= FullFrom (the zero value)
	// disables capture.
	FullFrom, FullTo event.Time

	sys     *sched.System
	sampler *metrics.Sampler
	therm   *thermal.Model

	window event.Time
	cur    int64  // index of the window acc is folding
	acc    uint64 // current window accumulator
	cum    uint64 // chained digest through the last sealed window
	dirty  bool   // acc has folded at least one tick since the last seal
	sealed []uint64
	steps  []Step
}

// Attach hooks the recorder onto the system's scheduler tick, chaining any
// previously installed TickHook per the hook-chaining contract. sampler and
// therm may be nil (their components are simply not folded); duration sizes
// the default window and preallocates the chain so steady-state recording
// allocates nothing.
func (r *Recorder) Attach(sys *sched.System, sampler *metrics.Sampler, therm *thermal.Model, duration event.Time) {
	if r == nil || r.sys == sys {
		return
	}
	if r.sys != nil {
		// Re-attachment to a different system: a forked continuation rebuilt
		// the world (core.Resume) and this recorder's chain spans the fork.
		// Move the hook, keep the window and the accumulated digests.
		r.sys, r.sampler, r.therm = sys, sampler, therm
		r.hook(sys)
		return
	}
	r.sys, r.sampler, r.therm = sys, sampler, therm
	r.window = r.Window
	if r.window <= 0 {
		r.window = duration / DefaultWindows
	}
	if tick := event.Time(sys.Cfg.TickMs) * event.Millisecond; r.window < tick {
		r.window = tick
	}
	r.acc, r.cum = offset64, offset64
	if duration > 0 {
		r.sealed = make([]uint64, 0, duration/r.window+2)
	}
	r.hook(sys)
}

// hook chains onTick onto sys's scheduler tick.
func (r *Recorder) hook(sys *sched.System) {
	prev := sys.TickHook
	sys.TickHook = func(now event.Time) {
		if prev != nil {
			prev(now)
		}
		r.onTick(now)
	}
}

// onTick folds one tick of state. Ticks land at multiples of the scheduler
// tick starting at tick 1; a tick at exactly a window boundary opens the new
// window (window i covers [i*window, (i+1)*window)).
func (r *Recorder) onTick(now event.Time) {
	idx := int64(now / r.window)
	for r.cur < idx {
		r.seal()
	}

	full := now >= r.FullFrom && now < r.FullTo
	var st Step
	if full {
		st = Step{At: now}
	}

	d := uint64(offset64)
	d = mix(d, uint64(now))
	fired := r.sys.Eng.Fired()
	d = mix(d, fired)
	soc := r.sys.SoC
	for i := range soc.Clusters {
		cl := &soc.Clusters[i]
		d = mix(d, uint64(cl.CurMHz))
		d = mix(d, uint64(cl.CapMHz))
		if full {
			st.FreqMHz = append(st.FreqMHz, cl.CurMHz)
			st.CapMHz = append(st.CapMHz, cl.CapMHz)
		}
	}
	for i := range soc.Cores {
		on := uint64(0)
		if soc.Cores[i].Online {
			on = 1
		}
		q := r.sys.QueueLen(i)
		busy := r.sys.BusyNs(i)
		d = mix(d, on)
		d = mix(d, uint64(q))
		d = mix(d, uint64(busy))
		d = mix(d, uint64(r.sys.DeepIdleNs(i)))
		if full {
			st.Online = append(st.Online, soc.Cores[i].Online)
			st.QueueLen = append(st.QueueLen, q)
			st.BusyNs = append(st.BusyNs, busy)
		}
	}
	for _, t := range r.sys.Tasks() {
		d = mix(d, uint64(t.CurState()))
		d = mix(d, uint64(uint32(t.CPU())))
		d = mix(d, uint64(t.Load()))
		d = mix(d, uint64(t.Queued()))
		d = mix(d, uint64(t.Migrations))
		d = mixf(d, t.TotalWork)
		if full {
			st.TaskNames = append(st.TaskNames, t.Name)
			st.TaskLoad = append(st.TaskLoad, t.Load())
			st.TaskCPU = append(st.TaskCPU, t.CPU())
			st.TaskQueued = append(st.TaskQueued, t.Queued())
			st.TaskState = append(st.TaskState, t.CurState().String())
			st.TaskWork = append(st.TaskWork, t.TotalWork)
			st.Migrations = append(st.Migrations, t.Migrations)
		}
	}
	if r.sampler != nil {
		e := r.sampler.EnergyMJ()
		d = mixf(d, e)
		if full {
			st.EnergyMJ = e
		}
	}
	if r.therm != nil {
		for _, c := range r.therm.TempC {
			d = mixf(d, c)
		}
		if full {
			st.TempC = append(st.TempC, r.therm.TempC...)
		}
	}

	r.acc = mix(r.acc, d)
	r.dirty = true
	if full {
		st.Fired = fired
		st.Digest = d
		r.steps = append(r.steps, st)
	}
}

// seal closes the current window: chains its accumulator into the cumulative
// digest, appends the window digest, and opens the next window. Windows with
// no ticks still seal (their empty accumulator chains through), so chains
// from equal-duration runs are index-aligned.
func (r *Recorder) seal() {
	r.cum = mix(r.cum, r.acc)
	r.sealed = append(r.sealed, r.cum)
	r.acc = offset64
	r.dirty = false
	r.cur++
}

// Chain returns the digest chain recorded so far, sealing a copy of the
// pending partial window (if any ticks folded into it) without mutating the
// recorder — Chain may be called mid-run and again later.
func (r *Recorder) Chain() Chain {
	if r == nil {
		return Chain{}
	}
	out := Chain{Window: r.window, Digests: append([]uint64(nil), r.sealed...)}
	if r.dirty {
		out.Digests = append(out.Digests, mix(r.cum, r.acc))
	}
	return out
}

// Steps returns the full-rate captures recorded inside [FullFrom, FullTo).
func (r *Recorder) Steps() []Step {
	if r == nil {
		return nil
	}
	return r.steps
}

// ResolvedWindow returns the window length in effect after Attach (the
// explicit Window, or the duration-derived default).
func (r *Recorder) ResolvedWindow() event.Time {
	if r == nil {
		return 0
	}
	return r.window
}
