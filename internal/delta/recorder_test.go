package delta

import (
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/platform"
	"biglittle/internal/sched"
)

// newTestSystem builds a minimal scheduler with a couple of live tasks so
// onTick has real state to fold.
func newTestSystem(t *testing.T) *sched.System {
	t.Helper()
	eng := event.New()
	sys := sched.New(eng, platform.Exynos5422(), sched.DefaultConfig())
	a := sys.NewTask("a", 2.0)
	b := sys.NewTask("b", 1.5)
	sys.Start()
	sys.Push(a, 5e6)
	sys.Push(b, 3e6)
	eng.Run(2 * event.Millisecond)
	return sys
}

func TestRecorderWindowing(t *testing.T) {
	sys := newTestSystem(t)
	r := &Recorder{Window: 2 * event.Millisecond}
	r.Attach(sys, nil, nil, 10*event.Millisecond)
	// Drive ticks by hand through the window arithmetic: window i covers
	// [i*2ms, (i+1)*2ms).
	for now := event.Time(1); now <= 10; now++ {
		r.onTick(now * event.Millisecond)
	}
	ch := r.Chain()
	// Ticks at 1..10ms: sealed windows 0..4 complete at ticks 2,4,6,8,10;
	// tick 10 opens window 5, whose partial accumulator seals in Chain().
	if got := len(ch.Digests); got != 6 {
		t.Fatalf("chain length = %d, want 6", got)
	}
	// Chain must not mutate: calling it twice gives the same digests.
	ch2 := r.Chain()
	if len(ch2.Digests) != len(ch.Digests) || ch2.Fingerprint() != ch.Fingerprint() {
		t.Fatal("Chain() mutated the recorder")
	}
}

func TestRecorderEmptyWindowsStillSeal(t *testing.T) {
	sys := newTestSystem(t)
	r := &Recorder{Window: 1 * event.Millisecond}
	r.Attach(sys, nil, nil, 100*event.Millisecond)
	r.onTick(1 * event.Millisecond)
	r.onTick(10 * event.Millisecond) // windows 1..9 elapse with no ticks
	ch := r.Chain()
	if got := len(ch.Digests); got != 11 {
		t.Fatalf("chain length = %d, want 11 (empty windows must seal)", got)
	}
}

func TestFirstDivergentWindow(t *testing.T) {
	a := Chain{Window: 1, Digests: []uint64{1, 2, 3, 4}}
	b := Chain{Window: 1, Digests: []uint64{1, 2, 9, 4}}
	if i, err := FirstDivergentWindow(a, b); err != nil || i != 2 {
		t.Fatalf("divergence = %d, %v; want 2, nil", i, err)
	}
	if i, err := FirstDivergentWindow(a, a); err != nil || i != -1 {
		t.Fatalf("self-compare = %d, %v; want -1, nil", i, err)
	}
	// A prefix agrees everywhere both have digests.
	p := Chain{Window: 1, Digests: []uint64{1, 2}}
	if i, err := FirstDivergentWindow(a, p); err != nil || i != -1 {
		t.Fatalf("prefix compare = %d, %v; want -1, nil", i, err)
	}
	if _, err := FirstDivergentWindow(a, Chain{Window: 2, Digests: []uint64{1}}); err == nil {
		t.Fatal("mismatched windows must error")
	}
}

func TestRecorderDeterministicFold(t *testing.T) {
	// Two recorders over the same system state fold identical chains.
	sys := newTestSystem(t)
	r1 := &Recorder{Window: event.Millisecond}
	r2 := &Recorder{Window: event.Millisecond}
	r1.Attach(sys, nil, nil, 10*event.Millisecond)
	r2.Attach(sys, nil, nil, 10*event.Millisecond)
	for now := event.Time(1); now <= 8; now++ {
		r1.onTick(now * event.Millisecond)
		r2.onTick(now * event.Millisecond)
	}
	c1, c2 := r1.Chain(), r2.Chain()
	if i, err := FirstDivergentWindow(c1, c2); err != nil || i != -1 {
		t.Fatalf("identical state folded divergent chains (window %d, %v)", i, err)
	}
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatal("fingerprints differ for identical folds")
	}
}

func TestRecorderFullRateSteps(t *testing.T) {
	sys := newTestSystem(t)
	r := &Recorder{Window: event.Millisecond,
		FullFrom: 3 * event.Millisecond, FullTo: 5 * event.Millisecond}
	r.Attach(sys, nil, nil, 10*event.Millisecond)
	for now := event.Time(1); now <= 8; now++ {
		r.onTick(now * event.Millisecond)
	}
	steps := r.Steps()
	if len(steps) != 2 {
		t.Fatalf("steps = %d, want 2 (ticks at 3ms and 4ms)", len(steps))
	}
	st := steps[0]
	if st.At != 3*event.Millisecond {
		t.Fatalf("first step at %v, want 3ms", st.At)
	}
	if len(st.TaskNames) != 2 || st.TaskNames[0] != "a" {
		t.Fatalf("step task names = %v", st.TaskNames)
	}
	if len(st.QueueLen) != len(sys.SoC.Cores) {
		t.Fatalf("step queue lens = %d, want %d", len(st.QueueLen), len(sys.SoC.Cores))
	}
	if st.Digest == 0 {
		t.Fatal("per-tick digest not recorded")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Attach(nil, nil, nil, 0)
	if ch := r.Chain(); len(ch.Digests) != 0 {
		t.Fatal("nil recorder chain not empty")
	}
	if r.Steps() != nil {
		t.Fatal("nil recorder steps not nil")
	}
	if r.ResolvedWindow() != 0 {
		t.Fatal("nil recorder window not zero")
	}
}

func TestRecorderSteadyStateZeroAlloc(t *testing.T) {
	sys := newTestSystem(t)
	r := &Recorder{Window: event.Millisecond}
	r.Attach(sys, nil, nil, 10*event.Second)
	now := event.Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += event.Millisecond
		r.onTick(now)
	})
	if allocs != 0 {
		t.Fatalf("steady-state fold allocates %.1f per tick, want 0", allocs)
	}
}

func TestDoubleAttachIgnored(t *testing.T) {
	sys := newTestSystem(t)
	r := &Recorder{Window: event.Millisecond}
	r.Attach(sys, nil, nil, 10*event.Millisecond)
	r.Attach(sys, nil, nil, 10*event.Millisecond) // must be a no-op
	// A reference recorder attached once, chained after r, sees the same
	// ticks; if the double attach had installed r's hook twice, r would fold
	// every tick twice and the chains would disagree.
	r2 := &Recorder{Window: event.Millisecond}
	r2.Attach(sys, nil, nil, 10*event.Millisecond)
	sys.Eng.Run(8 * event.Millisecond)
	c1, c2 := r.Chain(), r2.Chain()
	if i, err := FirstDivergentWindow(c1, c2); err != nil || i != -1 {
		t.Fatalf("double-attached recorder diverged from single (window %d, %v)", i, err)
	}
	if len(c1.Digests) == 0 {
		t.Fatal("no windows recorded; hook not driven")
	}
}
