package delta

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"

	"biglittle/internal/profile"
	"biglittle/internal/xray"
)

// Tolerance marks when a numeric difference is significant: |a-b| must
// exceed both Abs and Rel*max(|a|,|b|). The zero value means exact — any
// difference is significant.
type Tolerance struct {
	Abs float64
	Rel float64
}

func (t Tolerance) significant(a, b float64) bool {
	d := math.Abs(a - b)
	if d == 0 {
		return false
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d > t.Abs && d > t.Rel*m
}

// FieldDelta is one differing field between two structurally diffed values.
type FieldDelta struct {
	// Path locates the field, e.g. "TaskStats[2].EnergyMJ" or
	// "Profile.Tasks[br.layout].RunBigNs".
	Path string `json:"path"`
	// A and B render each side's value ("<absent>" for one-sided entries).
	A string `json:"a"`
	B string `json:"b"`
	// Significant is false only for numeric differences inside tolerance.
	Significant bool `json:"significant"`
}

func (d FieldDelta) String() string {
	mark := ""
	if !d.Significant {
		mark = "  (within tolerance)"
	}
	return fmt.Sprintf("%s: %s -> %s%s", d.Path, d.A, d.B, mark)
}

// Diff walks two values of the same type and returns every differing exported
// field, depth-first in field order, with numeric differences marked for
// significance against tol. Slices and arrays align by index (length
// differences report a ".len" delta and extra elements as one-sided), maps by
// the sorted union of keys. Unexported fields, funcs, and channels are
// skipped. Diff is the structural core reused by result diffing, lab audit
// mismatch reports, and the bldiff subcommands.
func Diff(a, b any, tol Tolerance) []FieldDelta {
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	var out []FieldDelta
	if !va.IsValid() || !vb.IsValid() || va.Type() != vb.Type() {
		if fmt.Sprintf("%T", a) != fmt.Sprintf("%T", b) {
			return []FieldDelta{{Path: "(type)", A: fmt.Sprintf("%T", a), B: fmt.Sprintf("%T", b), Significant: true}}
		}
		return nil
	}
	walk("", va, vb, tol, &out)
	return out
}

// Significant filters ds down to the significant deltas.
func Significant(ds []FieldDelta) []FieldDelta {
	var out []FieldDelta
	for _, d := range ds {
		if d.Significant {
			out = append(out, d)
		}
	}
	return out
}

// Summarize renders up to max deltas one per line (all of them when max <= 0),
// with a trailing "... and N more" when truncated. Empty input renders as
// "(no differences)".
func Summarize(ds []FieldDelta, max int) string {
	if len(ds) == 0 {
		return "(no differences)"
	}
	n := len(ds)
	if max > 0 && n > max {
		n = max
	}
	var b strings.Builder
	for _, d := range ds[:n] {
		fmt.Fprintf(&b, "  %s\n", d.String())
	}
	if n < len(ds) {
		fmt.Fprintf(&b, "  ... and %d more\n", len(ds)-n)
	}
	return b.String()
}

const absent = "<absent>"

func join(path, field string) string {
	if path == "" {
		return field
	}
	return path + "." + field
}

func render(v reflect.Value) string {
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		return fmt.Sprintf("%.6g", v.Float())
	case reflect.String:
		return fmt.Sprintf("%q", v.String())
	}
	return fmt.Sprintf("%v", v.Interface())
}

func walk(path string, a, b reflect.Value, tol Tolerance, out *[]FieldDelta) {
	switch a.Kind() {
	case reflect.Ptr, reflect.Interface:
		switch {
		case a.IsNil() && b.IsNil():
		case a.IsNil():
			*out = append(*out, FieldDelta{Path: path, A: "<nil>", B: render(b.Elem()), Significant: true})
		case b.IsNil():
			*out = append(*out, FieldDelta{Path: path, A: render(a.Elem()), B: "<nil>", Significant: true})
		case a.Kind() == reflect.Interface && a.Elem().Type() != b.Elem().Type():
			*out = append(*out, FieldDelta{Path: path, A: a.Elem().Type().String(), B: b.Elem().Type().String(), Significant: true})
		default:
			walk(path, a.Elem(), b.Elem(), tol, out)
		}
	case reflect.Struct:
		t := a.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			walk(join(path, f.Name), a.Field(i), b.Field(i), tol, out)
		}
	case reflect.Slice, reflect.Array:
		n := a.Len()
		if bl := b.Len(); bl != n {
			*out = append(*out, FieldDelta{Path: path + ".len", A: fmt.Sprint(n), B: fmt.Sprint(bl), Significant: true})
			if bl < n {
				n = bl
			}
		}
		for i := 0; i < n; i++ {
			walk(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i), tol, out)
		}
		for i := n; i < a.Len(); i++ {
			*out = append(*out, FieldDelta{Path: fmt.Sprintf("%s[%d]", path, i), A: render(a.Index(i)), B: absent, Significant: true})
		}
		for i := n; i < b.Len(); i++ {
			*out = append(*out, FieldDelta{Path: fmt.Sprintf("%s[%d]", path, i), A: absent, B: render(b.Index(i)), Significant: true})
		}
	case reflect.Map:
		keys := map[string]reflect.Value{}
		var names []string
		for _, k := range a.MapKeys() {
			s := fmt.Sprintf("%v", k.Interface())
			keys[s] = k
			names = append(names, s)
		}
		for _, k := range b.MapKeys() {
			s := fmt.Sprintf("%v", k.Interface())
			if _, ok := keys[s]; !ok {
				keys[s] = k
				names = append(names, s)
			}
		}
		sort.Strings(names)
		for _, s := range names {
			k := keys[s]
			av, bv := a.MapIndex(k), b.MapIndex(k)
			p := fmt.Sprintf("%s[%s]", path, s)
			switch {
			case !av.IsValid():
				*out = append(*out, FieldDelta{Path: p, A: absent, B: render(bv), Significant: true})
			case !bv.IsValid():
				*out = append(*out, FieldDelta{Path: p, A: render(av), B: absent, Significant: true})
			default:
				walk(p, av, bv, tol, out)
			}
		}
	case reflect.Float64, reflect.Float32:
		fa, fb := a.Float(), b.Float()
		if math.Float64bits(fa) == math.Float64bits(fb) {
			return
		}
		*out = append(*out, FieldDelta{Path: path, A: render(a), B: render(b), Significant: tol.significant(fa, fb)})
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if a.Int() != b.Int() {
			*out = append(*out, FieldDelta{Path: path, A: render(a), B: render(b),
				Significant: tol.significant(float64(a.Int()), float64(b.Int()))})
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if a.Uint() != b.Uint() {
			*out = append(*out, FieldDelta{Path: path, A: render(a), B: render(b),
				Significant: tol.significant(float64(a.Uint()), float64(b.Uint()))})
		}
	case reflect.Bool:
		if a.Bool() != b.Bool() {
			*out = append(*out, FieldDelta{Path: path, A: render(a), B: render(b), Significant: true})
		}
	case reflect.String:
		if a.String() != b.String() {
			*out = append(*out, FieldDelta{Path: path, A: render(a), B: render(b), Significant: true})
		}
	case reflect.Func, reflect.Chan, reflect.UnsafePointer:
		// Not comparable state; skip.
	default:
		if fmt.Sprintf("%v", a.Interface()) != fmt.Sprintf("%v", b.Interface()) {
			*out = append(*out, FieldDelta{Path: path, A: render(a), B: render(b), Significant: true})
		}
	}
}

// FirstDivergentSpan aligns two xray span streams by index and returns the
// index of the first pair that is not the same decision (xray.Span
// SameDecision: identity and provenance ignored). When one stream is a
// proper prefix of the other, the divergence index is the shorter length.
// Returns -1, false when the streams record identical decision sequences.
func FirstDivergentSpan(a, b []xray.Span) (int, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !a[i].SameDecision(b[i]) {
			return i, true
		}
	}
	if len(a) != len(b) {
		return n, true
	}
	return -1, false
}

// DiffSpanProvenance reports the provenance fields SameDecision ignores —
// the inputs and candidate tables — for an aligned span pair, so a forensic
// report can show *why* the same decision point went differently. Inputs
// align by name; candidates by core ID.
func DiffSpanProvenance(a, b xray.Span, tol Tolerance) []FieldDelta {
	var out []FieldDelta
	ia := map[string]float64{}
	var names []string
	for _, in := range a.Inputs {
		ia[in.Name] = in.Value
		names = append(names, in.Name)
	}
	ib := map[string]float64{}
	for _, in := range b.Inputs {
		if _, ok := ia[in.Name]; !ok {
			names = append(names, in.Name)
		}
		ib[in.Name] = in.Value
	}
	for _, n := range names {
		av, aok := ia[n]
		bv, bok := ib[n]
		p := "inputs[" + n + "]"
		switch {
		case !aok:
			out = append(out, FieldDelta{Path: p, A: absent, B: fmt.Sprintf("%.6g", bv), Significant: true})
		case !bok:
			out = append(out, FieldDelta{Path: p, A: fmt.Sprintf("%.6g", av), B: absent, Significant: true})
		case math.Float64bits(av) != math.Float64bits(bv):
			out = append(out, FieldDelta{Path: p, A: fmt.Sprintf("%.6g", av), B: fmt.Sprintf("%.6g", bv),
				Significant: tol.significant(av, bv)})
		}
	}
	ca := map[int]xray.Candidate{}
	var cores []int
	for _, c := range a.Candidates {
		ca[c.Core] = c
		cores = append(cores, c.Core)
	}
	cb := map[int]xray.Candidate{}
	for _, c := range b.Candidates {
		if _, ok := ca[c.Core]; !ok {
			cores = append(cores, c.Core)
		}
		cb[c.Core] = c
	}
	sort.Ints(cores)
	for _, id := range cores {
		av, aok := ca[id]
		bv, bok := cb[id]
		p := fmt.Sprintf("candidates[cpu%d]", id)
		switch {
		case !aok:
			out = append(out, FieldDelta{Path: p, A: absent, B: fmt.Sprintf("%+v", bv), Significant: true})
		case !bok:
			out = append(out, FieldDelta{Path: p, A: fmt.Sprintf("%+v", av), B: absent, Significant: true})
		default:
			for _, d := range Diff(av, bv, tol) {
				d.Path = p + "." + d.Path
				out = append(out, d)
			}
		}
	}
	return out
}

// DiffProfiles diffs two attribution snapshots with tasks aligned by name
// (snapshot task order is energy-sorted, so index alignment would misreport
// reordered tables as field churn). Scalar snapshot fields diff structurally.
func DiffProfiles(a, b profile.Snapshot, tol Tolerance) []FieldDelta {
	sa, sb := a, b
	sa.Tasks, sb.Tasks = nil, nil
	out := Diff(sa, sb, tol)
	var names []string
	seen := map[string]bool{}
	for _, t := range a.Tasks {
		names = append(names, t.Name)
		seen[t.Name] = true
	}
	for _, t := range b.Tasks {
		if !seen[t.Name] {
			names = append(names, t.Name)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		ta, aok := a.Task(n)
		tb, bok := b.Task(n)
		p := fmt.Sprintf("Tasks[%s]", n)
		switch {
		case !aok:
			out = append(out, FieldDelta{Path: p, A: absent, B: "(present)", Significant: true})
		case !bok:
			out = append(out, FieldDelta{Path: p, A: "(present)", B: absent, Significant: true})
		default:
			for _, d := range Diff(ta, tb, tol) {
				d.Path = p + "." + d.Path
				out = append(out, d)
			}
		}
	}
	return out
}

// ExplainTextDiff locates the first divergence between two rendered texts
// (golden-master files, report output) and names it at line and field
// granularity: "first divergence at line 17, field 3: ...". Returns "" when
// the texts are identical.
func ExplainTextDiff(want, got string) string {
	if want == got {
		return ""
	}
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] == gl[i] {
			continue
		}
		wf, gf := strings.Fields(wl[i]), strings.Fields(gl[i])
		field := ""
		m := len(wf)
		if len(gf) < m {
			m = len(gf)
		}
		for j := 0; j < m; j++ {
			if wf[j] != gf[j] {
				field = fmt.Sprintf(", field %d: %q -> %q", j+1, wf[j], gf[j])
				break
			}
		}
		if field == "" && len(wf) != len(gf) {
			field = fmt.Sprintf(", field count %d -> %d", len(wf), len(gf))
		}
		return fmt.Sprintf("first divergence at line %d%s\n  want: %s\n  got:  %s", i+1, field, wl[i], gl[i])
	}
	return fmt.Sprintf("first divergence at line %d: line count %d -> %d", n+1, len(wl), len(gl))
}
