package delta

import (
	"strings"
	"testing"

	"biglittle/internal/event"
	"biglittle/internal/profile"
	"biglittle/internal/xray"
)

type inner struct {
	X float64
	s string // unexported: must be skipped
}

type outer struct {
	Name  string
	N     int
	On    bool
	Inner inner
	List  []int
	M     map[string]int
	Ptr   *inner
	Skip  func()
}

func TestDiffStructural(t *testing.T) {
	a := outer{Name: "a", N: 1, On: true, Inner: inner{X: 1.0, s: "hidden"},
		List: []int{1, 2, 3}, M: map[string]int{"k": 1, "only_a": 5}, Ptr: &inner{X: 2}}
	b := outer{Name: "b", N: 2, On: false, Inner: inner{X: 1.5, s: "other"},
		List: []int{1, 9}, M: map[string]int{"k": 2, "only_b": 7}, Ptr: nil}
	ds := Diff(a, b, Tolerance{})
	want := map[string]bool{
		"Name": false, "N": false, "On": false, "Inner.X": false,
		"List.len": false, "List[1]": false, "List[2]": false,
		"M[k]": false, "M[only_a]": false, "M[only_b]": false, "Ptr": false,
	}
	for _, d := range ds {
		if _, ok := want[d.Path]; !ok {
			t.Errorf("unexpected delta %q", d.Path)
			continue
		}
		want[d.Path] = true
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("missing delta %q", p)
		}
	}
	// Unexported field differences must not appear.
	for _, d := range ds {
		if strings.Contains(d.Path, ".s") {
			t.Errorf("unexported field diffed: %q", d.Path)
		}
	}
}

func TestDiffIdentical(t *testing.T) {
	a := outer{Name: "x", List: []int{1}, M: map[string]int{"k": 1}, Ptr: &inner{X: 3}}
	if ds := Diff(a, a, Tolerance{}); len(ds) != 0 {
		t.Fatalf("identical values produced %d deltas: %v", len(ds), ds)
	}
}

func TestDiffTolerance(t *testing.T) {
	type v struct{ E float64 }
	ds := Diff(v{100.0}, v{100.0000001}, Tolerance{Rel: 1e-6})
	if len(ds) != 1 {
		t.Fatalf("deltas = %d, want 1", len(ds))
	}
	if ds[0].Significant {
		t.Fatal("difference inside tolerance marked significant")
	}
	ds = Diff(v{100.0}, v{101.0}, Tolerance{Rel: 1e-6})
	if len(ds) != 1 || !ds[0].Significant {
		t.Fatal("difference outside tolerance not marked significant")
	}
	if got := len(Significant(ds)); got != 1 {
		t.Fatalf("Significant filter = %d, want 1", got)
	}
}

func TestDiffTypeMismatch(t *testing.T) {
	ds := Diff(outer{}, inner{}, Tolerance{})
	if len(ds) != 1 || ds[0].Path != "(type)" {
		t.Fatalf("type mismatch deltas = %v", ds)
	}
}

func TestSummarize(t *testing.T) {
	ds := []FieldDelta{
		{Path: "A", A: "1", B: "2", Significant: true},
		{Path: "B", A: "3", B: "4", Significant: true},
		{Path: "C", A: "5", B: "6", Significant: true},
	}
	s := Summarize(ds, 2)
	if !strings.Contains(s, "A: 1 -> 2") || !strings.Contains(s, "... and 1 more") {
		t.Fatalf("summary = %q", s)
	}
	if got := Summarize(nil, 5); got != "(no differences)" {
		t.Fatalf("empty summary = %q", got)
	}
}

func TestFirstDivergentSpan(t *testing.T) {
	mk := func(at int, core int) xray.Span {
		return xray.Span{At: event.Time(at) * event.Millisecond, Kind: xray.KindWake, Core: core, FromCore: -1, Cluster: -1, Task: 0}
	}
	a := []xray.Span{mk(1, 0), mk(2, 1), mk(3, 4)}
	b := []xray.Span{mk(1, 0), mk(2, 1), mk(3, 5)}
	if i, ok := FirstDivergentSpan(a, b); !ok || i != 2 {
		t.Fatalf("divergence = %d,%v; want 2,true", i, ok)
	}
	if i, ok := FirstDivergentSpan(a, a); ok || i != -1 {
		t.Fatalf("identical streams = %d,%v; want -1,false", i, ok)
	}
	// Prefix streams diverge at the shorter length.
	if i, ok := FirstDivergentSpan(a, a[:2]); !ok || i != 2 {
		t.Fatalf("prefix streams = %d,%v; want 2,true", i, ok)
	}
	// Identity and provenance must not count as divergence.
	c := append([]xray.Span(nil), a...)
	c[1].ID, c[1].Parent = 99, 42
	c[1].Inputs = []xray.Input{{Name: "up_threshold", Value: 350}}
	if i, ok := FirstDivergentSpan(a, c); ok {
		t.Fatalf("identity/provenance-only change reported divergent at %d", i)
	}
}

func TestDiffSpanProvenance(t *testing.T) {
	a := xray.Span{
		Inputs:     []xray.Input{{Name: "load", Value: 412}, {Name: "up_threshold", Value: 700}},
		Candidates: []xray.Candidate{{Core: 0, QueueLen: 1}, {Core: 4, QueueLen: 0}},
	}
	b := xray.Span{
		Inputs:     []xray.Input{{Name: "load", Value: 412}, {Name: "up_threshold", Value: 350}},
		Candidates: []xray.Candidate{{Core: 0, QueueLen: 2}, {Core: 4, QueueLen: 0}},
	}
	ds := DiffSpanProvenance(a, b, Tolerance{})
	byPath := map[string]FieldDelta{}
	for _, d := range ds {
		byPath[d.Path] = d
	}
	if d, ok := byPath["inputs[up_threshold]"]; !ok || d.A != "700" || d.B != "350" {
		t.Fatalf("threshold input delta missing or wrong: %v", ds)
	}
	if _, ok := byPath["inputs[load]"]; ok {
		t.Fatal("equal input reported as delta")
	}
	if _, ok := byPath["candidates[cpu0].QueueLen"]; !ok {
		t.Fatalf("candidate queue delta missing: %v", ds)
	}
}

func TestDiffProfilesAlignsByName(t *testing.T) {
	a := profile.Snapshot{Tasks: []profile.TaskSnapshot{
		{Name: "hot", EnergyMJ: 10}, {Name: "cold", EnergyMJ: 1},
	}}
	// Same tasks, reordered (energy flipped) plus one new task.
	b := profile.Snapshot{Tasks: []profile.TaskSnapshot{
		{Name: "cold", EnergyMJ: 12}, {Name: "hot", EnergyMJ: 10}, {Name: "new", EnergyMJ: 5},
	}}
	ds := DiffProfiles(a, b, Tolerance{})
	var sawCold, sawNew bool
	for _, d := range ds {
		if strings.HasPrefix(d.Path, "Tasks[hot]") {
			t.Errorf("unchanged task diffed (index misalignment?): %v", d)
		}
		if d.Path == "Tasks[cold].EnergyMJ" {
			sawCold = true
		}
		if d.Path == "Tasks[new]" && d.A == "<absent>" {
			sawNew = true
		}
	}
	if !sawCold || !sawNew {
		t.Fatalf("expected cold energy delta and one-sided new task; got %v", ds)
	}
}

func TestExplainTextDiff(t *testing.T) {
	want := "header\na b c\nfooter"
	got := "header\na X c\nfooter"
	s := ExplainTextDiff(want, got)
	if !strings.Contains(s, "line 2") || !strings.Contains(s, "field 2") ||
		!strings.Contains(s, `"b" -> "X"`) {
		t.Fatalf("explanation = %q", s)
	}
	if ExplainTextDiff(want, want) != "" {
		t.Fatal("identical texts explained as different")
	}
	s = ExplainTextDiff("a\nb", "a\nb\nc")
	if !strings.Contains(s, "line count 2 -> 3") {
		t.Fatalf("line-count explanation = %q", s)
	}
}
