package delta

import (
	"fmt"

	"biglittle/internal/event"
)

// Snap is the digest recorder's dynamic state for whole-simulation snapshot:
// the chained digest through the capture point, so a forked run's chain
// continues exactly where the prefix left off and stays comparable (window by
// window) with an uninterrupted run's chain. Full-rate Steps are not carried
// across a fork — they are a forensic diagnostic for from-scratch runs.
type Snap struct {
	Window event.Time `json:"window"`
	Cur    int64      `json:"cur"`
	Acc    uint64     `json:"acc"`
	Cum    uint64     `json:"cum"`
	Dirty  bool       `json:"dirty"`
	Sealed []uint64   `json:"sealed"`
}

// Snapshot captures the recorder's chain state without modifying it. Capture
// inside a full-rate Step range is rejected by core (Steps are not restored).
func (r *Recorder) Snapshot() Snap {
	return Snap{
		Window: r.window,
		Cur:    r.cur,
		Acc:    r.acc,
		Cum:    r.cum,
		Dirty:  r.dirty,
		Sealed: append([]uint64(nil), r.sealed...),
	}
}

// Restore loads sn into a freshly Attached recorder (which installed the
// TickHook and resolved the window from the same config).
func (r *Recorder) Restore(sn *Snap) error {
	if r.sys == nil {
		return fmt.Errorf("delta: restore before Attach")
	}
	if sn.Window != r.window {
		return fmt.Errorf("delta: snapshot window %v != resolved window %v", sn.Window, r.window)
	}
	r.cur = sn.Cur
	r.acc = sn.Acc
	r.cum = sn.Cum
	r.dirty = sn.Dirty
	r.sealed = append(r.sealed[:0], sn.Sealed...)
	return nil
}
