package biglittle_test

import (
	"math"
	"testing"

	"biglittle"
)

// profiledRun executes one bbench run with the profiler (and telemetry)
// attached, returning everything the conservation tests reconcile.
func profiledRun(t *testing.T, seed int64) (biglittle.Result, biglittle.ProfileSnapshot,
	*biglittle.Telemetry, *biglittle.SchedSystem) {
	t.Helper()
	app, err := biglittle.AppByName("bbench")
	if err != nil {
		t.Fatal(err)
	}
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 5 * biglittle.Second
	cfg.Seed = seed

	prof := biglittle.NewProfiler()
	tel := biglittle.NewTelemetry()
	cfg.Profiler = prof
	cfg.Telemetry = tel
	var sys *biglittle.SchedSystem
	cfg.OnSystem = func(s *biglittle.SchedSystem) { sys = s }

	res := biglittle.Run(cfg)
	if res.Profile == nil {
		t.Fatal("Result.Profile not populated with a profiler attached")
	}
	return res, *res.Profile, tel, sys
}

// TestProfileEnergyConservation: the per-task energy attribution partitions
// the power meter's reading — attributed + unattributed equals
// Result.EnergyMJ within 0.1%, and no energy is double-counted.
func TestProfileEnergyConservation(t *testing.T) {
	res, snap, _, _ := profiledRun(t, 3)

	var perTask float64
	for _, task := range snap.Tasks {
		if task.EnergyMJ < 0 {
			t.Fatalf("task %s attributed negative energy %v", task.Name, task.EnergyMJ)
		}
		perTask += task.EnergyMJ
	}
	if math.Abs(perTask-snap.AttributedMJ) > 1e-6*snap.AttributedMJ {
		t.Fatalf("per-task sum %v != AttributedMJ %v", perTask, snap.AttributedMJ)
	}
	total := snap.AttributedMJ + snap.UnattributedMJ
	if res.EnergyMJ == 0 {
		t.Fatal("run metered no energy; conservation is vacuous")
	}
	if rel := math.Abs(total-res.EnergyMJ) / res.EnergyMJ; rel > 0.001 {
		t.Fatalf("attributed %v + unattributed %v = %v, meter %v (rel err %v > 0.1%%)",
			snap.AttributedMJ, snap.UnattributedMJ, total, res.EnergyMJ, rel)
	}
	if snap.AttributedMJ == 0 {
		t.Fatal("nothing attributed on a busy run")
	}
}

// TestProfileRunTimeConservation: the profiler's per-task run time per core
// type sums exactly (integer nanoseconds) to the scheduler's per-core busy
// totals — both sides are fed the same sync intervals.
func TestProfileRunTimeConservation(t *testing.T) {
	_, snap, _, sys := profiledRun(t, 3)

	var taskLittle, taskBig biglittle.Time
	for _, task := range snap.Tasks {
		taskLittle += task.LittleRunNs + task.TinyRunNs
		taskBig += task.BigRunNs
	}
	var coreLittle, coreBig biglittle.Time
	for id := range sys.SoC.Cores {
		if sys.SoC.Cores[id].Type.String() == "big" {
			coreBig += sys.BusyNs(id)
		} else {
			coreLittle += sys.BusyNs(id)
		}
	}
	if taskLittle != coreLittle || taskBig != coreBig {
		t.Fatalf("run-time split task(little=%v big=%v) != cores(little=%v big=%v)",
			taskLittle, taskBig, coreLittle, coreBig)
	}
	if taskLittle == 0 && taskBig == 0 {
		t.Fatal("no run time attributed")
	}
}

// TestProfileMigrationReconciliation: the profiler's per-task HMP migration
// counts agree exactly with the scheduler's Result.HMPMigrations and the
// telemetry event log — three independent accountings of the same run.
func TestProfileMigrationReconciliation(t *testing.T) {
	res, snap, tel, _ := profiledRun(t, 3)

	if got := snap.HMPMigrations(); got != res.HMPMigrations {
		t.Fatalf("profiler HMP migrations %d != Result.HMPMigrations %d", got, res.HMPMigrations)
	}
	if got := tel.HMPMigrations(); got != int64(res.HMPMigrations) {
		t.Fatalf("telemetry HMP migrations %d != Result.HMPMigrations %d", got, res.HMPMigrations)
	}
	if res.HMPMigrations == 0 {
		t.Fatal("run produced no HMP migrations; reconciliation is vacuous")
	}
	// Direction totals bound the HMP count: every threshold move changes tier.
	var up, down, all int
	for _, task := range snap.Tasks {
		up += task.UpMigrations
		down += task.DownMigrations
		all += task.Migrations
	}
	if up+down > all {
		t.Fatalf("directional moves %d+%d exceed total %d", up, down, all)
	}
	if snap.HMPMigrations() > up+down {
		t.Fatalf("HMP moves %d exceed tier-changing moves %d", snap.HMPMigrations(), up+down)
	}
}

// TestProfileSessionConservation: the same energy invariant holds across a
// multi-phase session driven through the live path.
func TestProfileSessionConservation(t *testing.T) {
	browser, err := biglittle.AppByName("browser")
	if err != nil {
		t.Fatal(err)
	}
	video, err := biglittle.AppByName("video_player")
	if err != nil {
		t.Fatal(err)
	}
	cfg := biglittle.NewSession(
		biglittle.SessionPhase{App: browser, Duration: 2 * biglittle.Second},
		biglittle.SessionPhase{App: video, Duration: 2 * biglittle.Second},
	)
	prof := biglittle.NewProfiler()
	cfg.Profiler = prof

	live := biglittle.NewLiveSession(cfg)
	// Advance in deliberately odd steps to exercise mid-phase boundaries.
	for to := 300 * biglittle.Millisecond; !live.Advance(to); to += 300 * biglittle.Millisecond {
	}
	res := live.Result()
	snap := prof.Snapshot(live.Now())

	meterMJ := res.TotalEnergyJ * 1000
	total := snap.AttributedMJ + snap.UnattributedMJ
	if meterMJ == 0 {
		t.Fatal("session metered no energy")
	}
	if rel := math.Abs(total-meterMJ) / meterMJ; rel > 0.001 {
		t.Fatalf("session attribution %v vs meter %v (rel err %v)", total, meterMJ, rel)
	}
	// Threads from both phases appear side by side.
	if _, ok := snap.Task("br.sys1"); !ok {
		t.Fatal("browser-phase thread missing from session profile")
	}
	if _, ok := snap.Task("vp.render"); !ok {
		t.Fatal("video-phase thread missing from session profile")
	}
}

// TestLiveSessionMatchesRun: advancing a session incrementally produces the
// identical Result as the one-shot Run path (same seed, same event order) —
// including the thermal fields and the audited invariants.
func TestLiveSessionMatchesRun(t *testing.T) {
	app, err := biglittle.AppByName("browser")
	if err != nil {
		t.Fatal(err)
	}
	th := biglittle.DefaultThermal()
	cfg := biglittle.NewSession(
		biglittle.SessionPhase{App: app, Duration: 2 * biglittle.Second},
	)
	cfg.Thermal = &th
	cfg.Check = biglittle.NewAuditor()
	want := biglittle.RunSession(cfg)

	// Each auditor observes one run; give the live path its own.
	aud := biglittle.NewAuditor()
	cfg.Check = aud
	live := biglittle.NewLiveSession(cfg)
	for to := 100 * biglittle.Millisecond; !live.Advance(to); to += 100 * biglittle.Millisecond {
	}
	got := live.Result()

	if got.TotalEnergyJ != want.TotalEnergyJ || got.Duration != want.Duration ||
		len(got.Phases) != len(want.Phases) {
		t.Fatalf("live result diverged from Run:\n got %+v\nwant %+v", got, want)
	}
	if got.MaxTempC != want.MaxTempC || got.ThrottledPct != want.ThrottledPct {
		t.Fatalf("live thermal fields diverged: got %.4f C / %.2f%%, want %.4f C / %.2f%%",
			got.MaxTempC, want.MaxTempC, got.ThrottledPct, want.ThrottledPct)
	}
	if got.TotalDrainPct != want.TotalDrainPct {
		t.Fatalf("live battery drain diverged: got %v, want %v", got.TotalDrainPct, want.TotalDrainPct)
	}
	for i := range got.Phases {
		if got.Phases[i] != want.Phases[i] {
			t.Fatalf("phase %d diverged:\n got %+v\nwant %+v", i, got.Phases[i], want.Phases[i])
		}
	}
	if rep := aud.Report(); !rep.Ok() || rep.Samples == 0 {
		t.Fatalf("live session audit failed:\n%s", rep)
	}
}

// TestSessionMatchesCoreRun: a single-phase session is the same simulation as
// a bare core run — energy, power, thermal, and battery accounting all agree.
func TestSessionMatchesCoreRun(t *testing.T) {
	app := biglittle.Stress(8) // sustained big-cluster load so thermal state moves
	th := biglittle.DefaultThermal()
	dur := 10 * biglittle.Second

	run := biglittle.DefaultConfig(app)
	run.Duration = dur
	run.Thermal = &th
	want := biglittle.Run(run)

	ses := biglittle.NewSession(biglittle.SessionPhase{App: app, Duration: dur})
	ses.Thermal = &th
	got := biglittle.RunSession(ses)

	if math.Abs(got.TotalEnergyJ*1000-want.EnergyMJ) > 1e-6 {
		t.Errorf("session energy %.6f J, core run %.6f J", got.TotalEnergyJ, want.EnergyMJ/1000)
	}
	if rel := math.Abs(got.AvgPowerMW-want.AvgPowerMW) / want.AvgPowerMW; rel > 1e-9 {
		t.Errorf("session avg power %.6f mW, core run %.6f mW", got.AvgPowerMW, want.AvgPowerMW)
	}
	if got.MaxTempC != want.MaxTempC {
		t.Errorf("session max temp %.6f C, core run %.6f C", got.MaxTempC, want.MaxTempC)
	}
	if got.ThrottledPct != want.ThrottledPct {
		t.Errorf("session throttled %.4f%%, core run %.4f%%", got.ThrottledPct, want.ThrottledPct)
	}
	if want.MaxTempC <= 0 {
		t.Error("thermal model never engaged; the parity check is vacuous")
	}
	wantDrain := biglittle.GalaxyS5Pack().DrainPct(want.EnergyMJ)
	if math.Abs(got.TotalDrainPct-wantDrain) > 1e-9 {
		t.Errorf("session drain %.6f%%, battery model on core energy %.6f%%", got.TotalDrainPct, wantDrain)
	}
}

// runForProfilerOverhead is the benchmark body shared by the profiler on/off
// pair (mirrors runForOverhead for telemetry).
func runForProfilerOverhead(prof *biglittle.Profiler) biglittle.Result {
	app, _ := biglittle.AppByName("eternity_warrior")
	cfg := biglittle.DefaultConfig(app)
	cfg.Duration = 4 * biglittle.Second
	cfg.Seed = 1
	cfg.Profiler = prof
	return biglittle.Run(cfg)
}

// BenchmarkProfilerOff is the baseline: a nil profiler, so every emit site
// reduces to one pointer check. Compare with BenchmarkProfilerOn.
func BenchmarkProfilerOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runForProfilerOverhead(nil)
	}
}

// BenchmarkProfilerOn measures a fully-enabled profiler, including the
// per-interval energy attribution.
func BenchmarkProfilerOn(b *testing.B) {
	var tasks int
	for i := 0; i < b.N; i++ {
		prof := biglittle.NewProfiler()
		res := runForProfilerOverhead(prof)
		tasks = len(res.Profile.Tasks)
	}
	b.ReportMetric(float64(tasks), "tasks/run")
}
